package optimizer

import (
	"testing"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/plan"
	"github.com/hourglass/sbon/internal/query"
)

// deployWorstPlan deploys the query's worst enumerated plan, giving the
// rewriter something to fix.
func deployWorstPlan(t *testing.T, env *Env, q query.Query) *Deployment {
	t.Helper()
	enum := plan.NewEnumerator(env.Stats)
	plans, err := enum.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	worst := plans[len(plans)-1]
	strat := RelaxationStrategy{Mapper: placement.OracleMapper{Source: env}}
	c, err := strat.PlaceCircuit(env, q, worst)
	if err != nil {
		t.Fatal(err)
	}
	dep := NewDeployment(env, nil)
	if err := dep.Deploy(c); err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestRewriteStepImprovesBadPlan(t *testing.T) {
	improvedSomewhere := false
	for seed := int64(30); seed < 36; seed++ {
		env, q := testSetup(t, seed, false)
		dep := deployWorstPlan(t, env, q)
		truth := TrueLatency{Topo: env.Topo}
		before := dep.TotalUsage(truth)

		ro := NewReoptimizer(dep)
		ro.Mapper = placement.OracleMapper{Source: env}
		ro.Model = truth
		stats, err := ro.RewriteStep()
		if err != nil {
			t.Fatal(err)
		}
		if stats.CircuitsEvaluated != 1 {
			t.Fatalf("evaluated %d circuits, want 1", stats.CircuitsEvaluated)
		}
		if stats.VariantsCosted == 0 {
			t.Fatal("no variants costed for a 4-way join")
		}
		after := dep.TotalUsage(truth)
		if after > before+1e-9 {
			t.Fatalf("seed %d: rewrite increased usage %v -> %v", seed, before, after)
		}
		if stats.Rewrites > 0 && after < before {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Fatal("rewriting never improved a worst-plan deployment across seeds")
	}
}

func TestRewriteStepConvergesToFixpoint(t *testing.T) {
	env, q := testSetup(t, 40, false)
	dep := deployWorstPlan(t, env, q)
	ro := NewReoptimizer(dep)
	ro.Mapper = placement.OracleMapper{Source: env}
	ro.Model = TrueLatency{Topo: env.Topo}
	for i := 0; i < 10; i++ {
		stats, err := ro.RewriteStep()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rewrites == 0 {
			return // fixpoint
		}
	}
	t.Fatal("rewriting did not converge within 10 sweeps")
}

func TestRewriteStepSkipsReusedCircuits(t *testing.T) {
	env, q := testSetup(t, 41, false)
	reg := NewRegistry()
	dep := NewDeployment(env, reg)
	mq := NewMultiQuery(env, reg, 1e18)
	r1, err := mq.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Deploy(r1.Circuit); err != nil {
		t.Fatal(err)
	}
	q2 := q
	q2.ID = 2
	q2.Consumer = env.Topo.StubNodeIDs()[0]
	r2, err := mq.Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ReusedServices == 0 {
		t.Skip("no reuse happened; cannot exercise the skip path")
	}
	if err := dep.Deploy(r2.Circuit); err != nil {
		t.Fatal(err)
	}
	ro := NewReoptimizer(dep)
	stats, err := ro.RewriteStep()
	if err != nil {
		t.Fatal(err)
	}
	// Only the non-reusing circuit may be evaluated.
	if stats.CircuitsEvaluated > 1 {
		t.Fatalf("evaluated %d circuits; reusing circuit must be skipped", stats.CircuitsEvaluated)
	}
}

func TestRewriteStepKeepsDeploymentConsistent(t *testing.T) {
	env, q := testSetup(t, 42, false)
	dep := deployWorstPlan(t, env, q)
	ro := NewReoptimizer(dep)
	ro.Mapper = placement.OracleMapper{Source: env}
	ro.Model = TrueLatency{Topo: env.Topo}
	if _, err := ro.RewriteStep(); err != nil {
		t.Fatal(err)
	}
	if dep.NumDeployed() != 1 {
		t.Fatalf("NumDeployed = %d after rewrite", dep.NumDeployed())
	}
	c, ok := dep.Circuit(q.ID)
	if !ok {
		t.Fatal("circuit lost its query ID through rewrite")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("rewritten circuit invalid: %v", err)
	}
	// Registry instances must match the circuit's current services.
	if dep.Registry.Len() != len(c.NewServices()) {
		t.Fatalf("registry %d instances, circuit has %d services",
			dep.Registry.Len(), len(c.NewServices()))
	}
}
