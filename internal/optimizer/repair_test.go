package optimizer

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// TestTicketDeadlineExpiryAborts: a ticket committed past its deadline
// must abort instead — returning the target's provisional charge so
// the load accounting lands exactly where it was before Begin.
func TestTicketDeadlineExpiryAborts(t *testing.T) {
	env, dep, ro := migrationFixture(t, 41)
	plan, err := ro.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 {
		t.Skip("no moves planned")
	}
	m := plan.Moves[0]
	before := captureState(env, dep)

	tk, err := dep.BeginMigration(m)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	tk.Deadline = t0.Add(time.Second)
	if tk.Expired(t0) {
		t.Fatal("ticket expired before its deadline")
	}
	if err := tk.CommitAt(t0.Add(2 * time.Second)); !errors.Is(err, ErrTicketExpired) {
		t.Fatalf("CommitAt past deadline = %v, want ErrTicketExpired", err)
	}
	requireStateEqual(t, before, captureState(env, dep), "after expired commit")
	if err := tk.CommitAt(t0); err == nil {
		t.Fatal("closed ticket accepted a second CommitAt")
	}

	// Within the deadline CommitAt behaves exactly like Commit.
	tk2, err := dep.BeginMigration(m)
	if err != nil {
		t.Fatal(err)
	}
	tk2.Deadline = t0.Add(time.Second)
	if err := tk2.CommitAt(t0); err != nil {
		t.Fatalf("CommitAt before deadline = %v", err)
	}
	c, _ := dep.Circuit(m.Query)
	if c.Services[m.Service].Node != m.To {
		t.Fatal("in-deadline commit did not rebind the service")
	}
}

// adoptDep builds the adopted-owner situation: owner q1 cancels while
// consumers survive, so the instance's owner of record (the lowest-id
// consumer) holds only a Reused placement of it.
func adoptDep(t *testing.T, seed int64, nConsumers int) (*Env, *Deployment, *ServiceInstance) {
	t.Helper()
	env, dep, inst, _ := sharedDep(t, seed, nConsumers)
	if err := dep.Cancel(1); err != nil {
		t.Fatal(err)
	}
	if inst.Owner != 2 {
		t.Fatalf("instance owner = q%d after owner cancel, want q2", inst.Owner)
	}
	return env, dep, inst
}

// TestPlanEvacuationMovesAdoptedZombies closes the un-evacuable-node
// gap: an instance whose owner of record holds only a Reused placement
// must still be planned off a victim node, marked Adopted for the data
// plane.
func TestPlanEvacuationMovesAdoptedZombies(t *testing.T) {
	env, dep, inst := adoptDep(t, 51, 2)
	_ = env
	ro := NewReoptimizer(dep)
	victim := inst.Node

	plan, err := ro.PlanEvacuation(map[topology.NodeID]bool{victim: true})
	if err != nil {
		t.Fatal(err)
	}
	var adoptedMove *Migration
	for i := range plan.Moves {
		if plan.Moves[i].Adopted {
			if adoptedMove != nil {
				t.Fatal("evacuation planned the adopted instance twice")
			}
			adoptedMove = &plan.Moves[i]
		}
	}
	if adoptedMove == nil {
		t.Fatalf("evacuation of node %d planned no move for the adopted instance (moves: %+v, unmovable: %d)",
			victim, plan.Moves, plan.Unmovable)
	}
	if adoptedMove.Query != 2 {
		t.Fatalf("adopted move belongs to q%d, want owner of record q2", adoptedMove.Query)
	}
	if adoptedMove.From != victim {
		t.Fatalf("adopted move from %d, want %d", adoptedMove.From, victim)
	}
	if adoptedMove.To == victim {
		t.Fatal("adopted move targets the victim")
	}
	if adoptedMove.InRate != inst.InRate {
		t.Fatalf("adopted move carries rate %v, want instance rate %v", adoptedMove.InRate, inst.InRate)
	}
}

// TestAdoptedMigrationCommitRebindsEverything drives the adopted move
// through the two-phase protocol and checks the instance, the
// registry, every consumer placement, and the load fixed point.
func TestAdoptedMigrationCommitRebindsEverything(t *testing.T) {
	env, dep, inst := adoptDep(t, 52, 3)
	ro := NewReoptimizer(dep)
	victim := inst.Node
	perRate := env.Config().LoadPerRate

	plan, err := ro.PlanEvacuation(map[topology.NodeID]bool{victim: true})
	if err != nil {
		t.Fatal(err)
	}
	var move *Migration
	for i := range plan.Moves {
		if plan.Moves[i].Adopted {
			move = &plan.Moves[i]
		}
	}
	if move == nil {
		t.Fatal("no adopted move planned")
	}

	fromBefore, toBefore := env.Load(move.From), env.Load(move.To)
	tk, err := dep.BeginMigration(*move)
	if err != nil {
		t.Fatalf("BeginMigration(adopted) = %v", err)
	}
	if got := env.Load(move.To); math.Abs(got-(toBefore+inst.InRate*perRate)) > 1e-12 {
		t.Fatalf("target load %v after Begin, want %v", got, toBefore+inst.InRate*perRate)
	}
	if err := tk.Commit(); err != nil {
		t.Fatal(err)
	}
	if inst.Node != move.To {
		t.Fatalf("instance still on node %d after commit, want %d", inst.Node, move.To)
	}
	if got := env.Load(move.From); math.Abs(got-(fromBefore-inst.InRate*perRate)) > 1e-12 {
		t.Fatalf("source load %v after Commit, want %v", got, fromBefore-inst.InRate*perRate)
	}
	requireNoStaleReuse(t, dep)
	for id := query.QueryID(2); id <= 4; id++ {
		c, ok := dep.Circuit(id)
		if !ok {
			continue
		}
		for _, s := range c.Services {
			if s.Reused && s.ReusedFrom == inst && s.Node != move.To {
				t.Fatalf("q%d reused placement still on %d", id, s.Node)
			}
		}
	}

	// Abort path returns the charge bit-exactly.
	plan2, err := ro.PlanEvacuation(map[topology.NodeID]bool{move.To: true})
	if err != nil {
		t.Fatal(err)
	}
	var m2 *Migration
	for i := range plan2.Moves {
		if plan2.Moves[i].Adopted {
			m2 = &plan2.Moves[i]
		}
	}
	if m2 == nil {
		t.Fatal("no adopted move planned off the new host")
	}
	before := captureState(env, dep)
	tk2, err := dep.BeginMigration(*m2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk2.Abort(); err != nil {
		t.Fatal(err)
	}
	requireStateEqual(t, before, captureState(env, dep), "after adopted Begin+Abort")
}

// TestNonOwnerReuseStillRejected: the adopted path must not loosen the
// non-owner guard.
func TestNonOwnerReuseStillRejected(t *testing.T) {
	env, dep, inst := adoptDep(t, 53, 2)
	c3, _ := dep.Circuit(3) // consumer, NOT the owner of record
	idx := -1
	for i, s := range c3.Services {
		if s.Reused && s.ReusedFrom == inst {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("q3 has no reused placement")
	}
	_, err := dep.BeginMigration(Migration{
		Query: 3, Service: idx, From: inst.Node,
		To: env.Topo.StubNodeIDs()[0], InRate: inst.InRate,
	})
	if err == nil {
		t.Fatal("non-owner adopted move accepted")
	}
}
