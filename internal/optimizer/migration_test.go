package optimizer

import (
	"math"
	"testing"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// migrationFixture deploys a few circuits and perturbs loads so a sweep
// has real moves to find.
func migrationFixture(t *testing.T, seed int64) (*Env, *Deployment, *Reoptimizer) {
	t.Helper()
	env, q := testSetup(t, seed, false)
	opt := &Integrated{Env: env, Mapper: placement.OracleMapper{Source: env}}
	dep := NewDeployment(env, nil)
	for i, streams := range [][]query.StreamID{{0, 1}, {1, 2, 3}, {0, 2}} {
		qq := q
		qq.ID = query.QueryID(i + 1)
		qq.Streams = streams
		res, err := opt.Optimize(qq)
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.Deploy(res.Circuit); err != nil {
			t.Fatal(err)
		}
	}
	ro := NewReoptimizer(dep)
	ro.Mapper = placement.OracleMapper{Source: env}
	// Load up a hosting node so the sweep wants to move something
	// (deterministic circuit order: map iteration would randomize which
	// node gets hit).
	for _, c := range dep.circuitsInOrder() {
		if u := c.UnpinnedServices(); len(u) > 0 {
			env.SetBackgroundLoad(u[0].Node, 5.0)
			break
		}
	}
	return env, dep, ro
}

// snapshotState captures everything a sweep could disturb.
type depState struct {
	loads    []float64
	bindings map[query.QueryID][]topology.NodeID
}

func captureState(env *Env, dep *Deployment) depState {
	st := depState{bindings: make(map[query.QueryID][]topology.NodeID)}
	for _, id := range env.NodeIDs() {
		st.loads = append(st.loads, env.Load(id))
	}
	for id, c := range dep.Circuits() {
		nodes := make([]topology.NodeID, len(c.Services))
		for i, s := range c.Services {
			nodes[i] = s.Node
		}
		st.bindings[id] = nodes
	}
	return st
}

func requireStateEqual(t *testing.T, want, got depState, context string) {
	t.Helper()
	for i := range want.loads {
		if math.Abs(want.loads[i]-got.loads[i]) > 1e-12 {
			t.Fatalf("%s: node %d load %v, want %v", context, i, got.loads[i], want.loads[i])
		}
	}
	for id, nodes := range want.bindings {
		for i, n := range nodes {
			if got.bindings[id][i] != n {
				t.Fatalf("%s: q%d service %d bound to %d, want %d", context, id, i, got.bindings[id][i], n)
			}
		}
	}
}

// TestPlanDoesNotMutate pins the tentpole's control-plane contract: a
// sweep that only plans must leave loads, bindings, and instances
// untouched, and planning twice must yield the identical move list.
func TestPlanDoesNotMutate(t *testing.T) {
	env, dep, ro := migrationFixture(t, 21)
	before := captureState(env, dep)
	plan1, err := ro.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan1.Moves) == 0 {
		t.Fatal("fixture produced no planned moves; the invariants below would be vacuous")
	}
	requireStateEqual(t, before, captureState(env, dep), "after Plan")
	plan2, err := ro.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan1.Moves) != len(plan2.Moves) {
		t.Fatalf("repeated Plan sizes differ: %d vs %d", len(plan1.Moves), len(plan2.Moves))
	}
	for i := range plan1.Moves {
		if plan1.Moves[i] != plan2.Moves[i] {
			t.Fatalf("repeated Plan diverges at move %d: %+v vs %+v", i, plan1.Moves[i], plan2.Moves[i])
		}
	}
	for _, m := range plan1.Moves {
		if m.PredictedGain <= 0 {
			t.Fatalf("planned move %+v has non-positive predicted gain", m)
		}
		if m.From == m.To {
			t.Fatalf("planned move %+v is a no-op", m)
		}
	}
}

// TestStepEqualsPlanThenTwoPhase pins that the refactor preserved Step's
// sequential semantics: Plan + Begin/Commit of every move lands the
// deployment in exactly the state a direct Step produces.
func TestStepEqualsPlanThenTwoPhase(t *testing.T) {
	envA, depA, roA := migrationFixture(t, 22)
	envB, depB, roB := migrationFixture(t, 22)

	if _, err := roA.Step(); err != nil {
		t.Fatal(err)
	}

	plan, err := roB.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range plan.Moves {
		ticket, err := depB.BeginMigration(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := ticket.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	requireStateEqual(t, captureState(envA, depA), captureState(envB, depB), "plan+two-phase vs Step")
}

// TestTwoPhaseChargesBothHostsInFlight verifies the in-flight accounting
// the paper's migration story needs: between Begin and Commit the load
// sits on both hosts; Commit releases the source, Abort the target.
func TestTwoPhaseChargesBothHostsInFlight(t *testing.T) {
	env, dep, ro := migrationFixture(t, 23)
	plan, err := ro.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 {
		t.Skip("no moves planned")
	}
	m := plan.Moves[0]
	perRate := env.Config().LoadPerRate
	fromBefore, toBefore := env.Load(m.From), env.Load(m.To)

	ticket, err := dep.BeginMigration(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := env.Load(m.To); math.Abs(got-(toBefore+m.InRate*perRate)) > 1e-12 {
		t.Fatalf("target load %v after Begin, want %v (double charge)", got, toBefore+m.InRate*perRate)
	}
	if got := env.Load(m.From); got != fromBefore {
		t.Fatalf("source load %v changed at Begin", got)
	}
	if err := ticket.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := env.Load(m.From); math.Abs(got-(fromBefore-m.InRate*perRate)) > 1e-12 {
		t.Fatalf("source load %v after Commit, want %v", got, fromBefore-m.InRate*perRate)
	}
	if err := ticket.Commit(); err == nil {
		t.Fatal("double Commit did not error")
	}

	// Abort path: plan again and cancel.
	plan2, err := ro.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Moves) > 0 {
		m2 := plan2.Moves[0]
		before := captureState(env, dep)
		tk, err := dep.BeginMigration(m2)
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Abort(); err != nil {
			t.Fatal(err)
		}
		requireStateEqual(t, before, captureState(env, dep), "after Begin+Abort")
	}
}

// TestMigrationFixedPoint pins the settle invariant: after a sweep's
// moves are fully committed, every node's load equals base plus exactly
// the services it now hosts — the same fixed point a from-scratch
// deployment of the migrated circuits reaches.
func TestMigrationFixedPoint(t *testing.T) {
	env, dep, ro := migrationFixture(t, 24)
	plan, err := ro.Plan()
	if err != nil {
		t.Fatal(err)
	}
	tickets := make([]*MigrationTicket, 0, len(plan.Moves))
	for _, m := range plan.Moves {
		tk, err := dep.BeginMigration(m)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if err := tk.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Recompute expected load per node from scratch: background base +
	// Σ hosted non-reused service input rates.
	perRate := env.Config().LoadPerRate
	expected := make(map[topology.NodeID]float64)
	for _, c := range dep.Circuits() {
		for _, s := range c.NewServices() {
			expected[s.Node] += s.InRate * perRate
		}
	}
	for _, id := range env.NodeIDs() {
		base := env.Load(id) - expected[id]
		svc := expected[id]
		if got := env.Load(id); math.Abs(got-(base+svc)) > 1e-9 {
			t.Fatalf("node %d load %v, want base %v + services %v", id, got, base, svc)
		}
	}
	// The sharper check: a second sweep right after settle must find the
	// deployment at (or very near) its non-migrating fixed point — no
	// move it accepts can be an artifact of dangling double charges.
	st, err := ro.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.Migrations > len(plan.Moves) {
		t.Fatalf("post-settle sweep found %d migrations, more than the original %d — accounting drift", st.Migrations, len(plan.Moves))
	}
}

// TestBeginMigrationValidates covers the guard rails.
func TestBeginMigrationValidates(t *testing.T) {
	env, dep, _ := migrationFixture(t, 25)
	_ = env
	if _, err := dep.BeginMigration(Migration{Query: 999}); err == nil {
		t.Fatal("unknown query accepted")
	}
	var anyC *Circuit
	for _, c := range dep.Circuits() {
		anyC = c
		break
	}
	if _, err := dep.BeginMigration(Migration{Query: anyC.Query.ID, Service: -1}); err == nil {
		t.Fatal("bad service index accepted")
	}
	// Pinned consumer: last service.
	consumerIdx := -1
	for i, s := range anyC.Services {
		if s.Plan == nil {
			consumerIdx = i
		}
	}
	if _, err := dep.BeginMigration(Migration{Query: anyC.Query.ID, Service: consumerIdx}); err == nil {
		t.Fatal("pinned consumer migration accepted")
	}
}
