package adapt

import (
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// runContinuous drives one full continuous-adaptation run on a virtual
// clock: warm-up, a deterministic schedule of mid-run load drifts, and
// a stop signal, returning the aggregated stats and final placements.
func runContinuous(t *testing.T, seed int64) (RunStats, map[query.QueryID][]topology.NodeID) {
	t.Helper()
	f := newFixture(t, seed, 5)
	f.co.Threshold = 0.3 // settle to a fixed point between drifts
	f.clk.Sleep(time.Second)

	const interval = 500 * time.Millisecond
	var targets []topology.NodeID
	for _, run := range f.runs {
		for _, s := range run.Circuit.UnpinnedServices() {
			targets = append(targets, s.Node)
		}
	}
	if len(targets) == 0 {
		t.Fatal("fixture deployed no unpinned services")
	}
	// Drift a hosting node's load mid-interval, one per round: the
	// loop's next sweep sees exactly one fresh delta-log entry.
	for i := 0; i < 4; i++ {
		n := targets[(i*3)%len(targets)]
		f.clk.AfterFunc(time.Duration(i)*interval+interval/2, func() {
			f.env.SetBackgroundLoad(n, 4.0)
		})
	}
	stop := make(chan struct{})
	f.clk.AfterFunc(4*time.Second, func() { f.clk.Signal(stop) })

	rs, err := f.co.Run(interval, stop)
	if err != nil {
		t.Fatal(err)
	}
	requireConsistent(t, f)
	requireNoLossCounters(t, f)

	placements := make(map[query.QueryID][]topology.NodeID)
	for _, run := range f.runs {
		c := run.Circuit
		nodes := make([]topology.NodeID, len(c.Services))
		for i, s := range c.Services {
			nodes[i] = s.Node
		}
		placements[c.Query.ID] = nodes
	}
	return rs, placements
}

// TestRunContinuousDeterministic pins the continuous loop's virtual-time
// contract: two same-seed runs — live data plane, mid-run load drifts,
// incremental sweeps — produce identical statistics (settle timings
// included) and identical final placements. It also checks the loop's
// delta economics: exactly the priming round is a full sweep, every
// drift-response round plans from the delta log.
func TestRunContinuousDeterministic(t *testing.T) {
	rs1, p1 := runContinuous(t, 61)
	rs2, p2 := runContinuous(t, 61)
	if rs1 != rs2 {
		t.Fatalf("same-seed runs diverge:\n run1 %+v\n run2 %+v", rs1, rs2)
	}
	for id, nodes := range p1 {
		for i, n := range nodes {
			if p2[id][i] != n {
				t.Fatalf("same-seed final placements diverge: q%d service %d on %d vs %d", id, i, n, p2[id][i])
			}
		}
	}
	if rs1.Sweeps < 2 {
		t.Fatalf("loop completed %d sweeps, want several", rs1.Sweeps)
	}
	if rs1.FullSweeps != 1 {
		t.Fatalf("loop ran %d full sweeps, want exactly the priming one", rs1.FullSweeps)
	}
}

// TestRunQuiescesWhenClean pins the zero-delta fixed point: once the
// deployment settles and nothing drifts, every further round consumes
// an empty delta log and evaluates nothing.
func TestRunQuiescesWhenClean(t *testing.T) {
	f := newFixture(t, 67, 5)
	f.co.Threshold = 0.3
	f.clk.Sleep(time.Second)

	stop := make(chan struct{})
	f.clk.AfterFunc(4*time.Second, func() { f.clk.Signal(stop) })
	rs, err := f.co.Run(500*time.Millisecond, stop)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Sweeps < 3 {
		t.Fatalf("loop completed %d sweeps, want several", rs.Sweeps)
	}
	last := rs.Last
	if last.FullSweep || last.DirtyNodes != 0 || last.AffectedCircuits != 0 || last.ServicesEvaluated != 0 || last.Planned != 0 {
		t.Fatalf("final round of an undisturbed loop is not quiescent: %+v", last)
	}
	requireConsistent(t, f)
	requireNoLossCounters(t, f)
}
