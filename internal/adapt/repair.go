// Failure repair: the unplanned counterpart of Evacuate. An evacuation
// drains a node the operator chose to retire — live handoffs, zero
// loss. Repair runs after the failure detector confirms a node died
// with no warning: circuits whose movable services were hosted there
// re-place onto live nodes through the same cost-space evacuation
// sweep, the engine re-instantiates the lost operators fresh (state
// and in-flight tuples are counted lost, never silently dropped), and
// circuits anchored to a dead endpoint — a pinned producer or the
// consumer itself — cancel, releasing or re-owning their shared
// instances.
package adapt

import (
	"errors"
	"sort"
	"time"

	"github.com/hourglass/sbon/internal/failure"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/stream"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// RepairStats reports one failure-repair round.
type RepairStats struct {
	// DeadNodes is the number of confirmed-dead nodes this round acted
	// on; CancelledCircuits counts circuits torn down because a pinned
	// endpoint (producer or consumer) died with its node.
	DeadNodes         int
	CancelledCircuits int
	// Planned counts moves the evacuation sweep produced for services
	// on dead nodes; Repaired of those committed. DataPlane counts
	// engine-side fresh re-instantiations (the rest were control-plane
	// only), Adopted the shared-instance re-owns among them.
	Planned   int
	Repaired  int
	DataPlane int
	Adopted   int
	// ZombieRepaired counts kept services of trimmed zombie circuits —
	// executing for subscribers but accounted by no deployed circuit —
	// that were re-instantiated off dead hosts.
	ZombieRepaired int
	// Unmovable counts pinned non-endpoint services stranded on dead
	// nodes (their circuits were cancelled), Aborted tickets that could
	// not commit.
	Unmovable int
	Aborted   int
	// BufferedLost counts tuples lost from cancelled in-flight handoff
	// buffers; StateLostKB sums operator state that died with its host.
	// Tuples dropped at dead hosts before repair are counted by the
	// overlay (msgs.down_dropped, faults.dropped).
	BufferedLost int
	StateLostKB  float64
	// Duration is clock time spent repairing (zero under the virtual
	// clock: repair route-flips are synchronous).
	Duration time.Duration
}

func (a *RepairStats) add(b RepairStats) {
	a.DeadNodes += b.DeadNodes
	a.CancelledCircuits += b.CancelledCircuits
	a.Planned += b.Planned
	a.Repaired += b.Repaired
	a.DataPlane += b.DataPlane
	a.Adopted += b.Adopted
	a.ZombieRepaired += b.ZombieRepaired
	a.Unmovable += b.Unmovable
	a.Aborted += b.Aborted
	a.BufferedLost += b.BufferedLost
	a.StateLostKB += b.StateLostKB
	a.Duration += b.Duration
}

// Repair recovers every deployed circuit from the unannounced death of
// the given nodes:
//
//  1. The dead nodes are excluded as placement targets for this and
//     every later sweep (a Recovered event, via HandleFailures, lifts
//     the exclusion).
//  2. Circuits anchored to a dead endpoint — a pinned, non-reused
//     service on a dead node — cancel: their streams have no source or
//     sink anymore. Shared instances they owned survive through the
//     usual adoption path (a surviving consumer becomes owner of
//     record).
//  3. One evacuation sweep re-places every movable service hosted on a
//     dead node — including adopted shared instances executing in
//     trimmed zombies — onto live nodes near their cost-space ideal.
//  4. Each move runs the two-phase ticket protocol with the engine's
//     crash-repair path (fresh operator, immediate route flip) instead
//     of a live handoff: the source is dead, so state and in-flight
//     tuples are lost and counted rather than shipped.
//
// Repair is deterministic under the virtual clock: circuits cancel in
// query-id order and moves execute in sweep order.
func (co *Coordinator) Repair(dead []topology.NodeID, cancel <-chan struct{}) (RepairStats, error) {
	_ = cancel // repair is synchronous; kept for signature symmetry with Sweep
	clk := co.clock()
	start := clk.Now()
	stats := RepairStats{}
	if co.Exclude == nil {
		co.Exclude = make(map[topology.NodeID]bool)
	}
	if co.dead == nil {
		co.dead = make(map[topology.NodeID]bool)
	}
	for _, n := range dead {
		if !co.dead[n] {
			co.dead[n] = true
			stats.DeadNodes++
		}
		co.Exclude[n] = true
	}
	if stats.DeadNodes == 0 && !co.retryRepair {
		return stats, nil
	}
	co.retryRepair = false
	sp := co.beginSpan("adapt", "repair", trace.Int("dead_now", stats.DeadNodes),
		trace.Int("dead_total", len(co.dead)))
	defer func() {
		sp.End(trace.Int("cancelled", stats.CancelledCircuits), trace.Int("repaired", stats.Repaired),
			trace.Int("zombie", stats.ZombieRepaired), trace.Int("aborted", stats.Aborted),
			trace.Int("buffered_lost", stats.BufferedLost), trace.Num("state_lost_kb", stats.StateLostKB))
	}()
	// The sweep below covers the whole cumulative dead set, not just
	// this round's deaths: a move aborted earlier (its target itself
	// died undetected, say) is retried instead of stranding the service
	// on the corpse.
	deadSet := co.dead

	// Retire the dead nodes from the DHT before planning: their
	// published coordinates must stop answering mapping queries, the
	// fingers that routed through them repair, and catalog entries they
	// stored republish onto live owners.
	if cat := co.Dep.Env.Catalog(); cat != nil {
		cat.RepairAfterCrash(dead)
	}

	// Cancel circuits that lost an endpoint. Deterministic order: the
	// circuits map iterates randomly, so sort the ids.
	var doomed []query.QueryID
	for id, c := range co.Dep.Circuits() {
		for _, s := range c.Services {
			if s.Pinned && !s.Reused && deadSet[s.Node] {
				doomed = append(doomed, id)
				break
			}
		}
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i] < doomed[j] })
	for _, id := range doomed {
		if co.Engine != nil {
			if err := co.Engine.Stop(id); err != nil && !errors.Is(err, stream.ErrNotRunning) {
				return stats, err
			}
		}
		if err := co.Dep.Cancel(id); err != nil {
			return stats, err
		}
		stats.CancelledCircuits++
		sp.Emit("cancel_circuit", trace.Int("q", int(id)))
	}

	// One evacuation sweep over the dead set re-places everything
	// movable, adopted zombies included.
	plan, err := co.reopt().PlanEvacuation(deadSet)
	if err != nil {
		return stats, err
	}
	stats.Planned = len(plan.Moves)
	stats.Unmovable = plan.Unmovable

	for _, m := range plan.Moves {
		ticket, err := co.Dep.BeginMigration(m)
		if err != nil {
			stats.Aborted++
			sp.Emit("repair_abort", trace.Int("q", int(m.Query)), trace.Int("svc", m.Service),
				trace.Str("stage", "begin"))
			continue
		}
		if co.TicketTTL > 0 {
			ticket.Deadline = clk.Now().Add(co.TicketTTL)
		}
		if co.Engine != nil {
			var rec *stream.RepairRecord
			var rerr error
			if m.Adopted {
				c, ok := co.Dep.Circuit(m.Query)
				var inst *optimizer.ServiceInstance
				if ok && m.Service < len(c.Services) {
					inst = c.Services[m.Service].ReusedFrom
				}
				if inst == nil {
					rerr = stream.ErrNotRunning
				} else {
					rec, rerr = co.Engine.RepairShared(inst, m.To)
				}
			} else {
				rec, rerr = co.Engine.Repair(m.Query, m.Service, m.To)
			}
			switch {
			case rerr == nil:
				stats.DataPlane++
				if m.Adopted {
					stats.Adopted++
				}
				stats.BufferedLost += rec.BufferedLost
				stats.StateLostKB += rec.StateLostKB
			case errors.Is(rerr, stream.ErrNotRunning), errors.Is(rerr, stream.ErrProviderNotRunning):
				// Control-plane-only circuit: nothing executes.
			default:
				_ = ticket.Abort()
				stats.Aborted++
				sp.Emit("repair_abort", trace.Int("q", int(m.Query)), trace.Int("svc", m.Service),
					trace.Str("stage", "engine"))
				continue
			}
		}
		if err := ticket.CommitAt(clk.Now()); err != nil {
			stats.Aborted++
			sp.Emit("repair_abort", trace.Int("q", int(m.Query)), trace.Int("svc", m.Service),
				trace.Str("stage", "commit"))
			continue
		}
		stats.Repaired++
		if sp.Active() {
			adopted := 0
			if m.Adopted {
				adopted = 1
			}
			sp.Emit("repair_move", trace.Int("q", int(m.Query)), trace.Int("svc", m.Service),
				trace.Int("from", int(m.From)), trace.Int("to", int(m.To)), trace.Int("adopted", adopted))
		}
	}

	// Trimmed zombies execute services no deployed circuit accounts for
	// (the upstream closure feeding an adopted shared instance). The
	// evacuation sweep cannot see them, so ask the engine and re-place
	// each one on the live node nearest its dead host's coordinate.
	if co.Engine != nil {
		zs := co.Engine.ZombieServicesOn(func(n topology.NodeID) bool { return deadSet[n] })
		for _, z := range zs {
			to, ok := co.nearestLive(z.Node)
			if !ok {
				stats.Aborted++
				continue
			}
			rec, err := co.Engine.RepairZombieService(z.Query, z.Service, to)
			if err != nil {
				stats.Aborted++
				sp.Emit("repair_abort", trace.Int("q", int(z.Query)), trace.Int("svc", z.Service),
					trace.Str("stage", "zombie"))
				continue
			}
			stats.DataPlane++
			stats.ZombieRepaired++
			stats.BufferedLost += rec.BufferedLost
			stats.StateLostKB += rec.StateLostKB
			sp.Emit("repair_zombie", trace.Int("q", int(z.Query)), trace.Int("svc", z.Service),
				trace.Int("from", int(z.Node)), trace.Int("to", int(to)))
		}
	}
	// Aborted moves leave services stranded on dead hosts; the next
	// round retries them even if no new death triggers it.
	co.retryRepair = stats.Aborted > 0
	stats.Duration = clk.Since(start)
	return stats, nil
}

// nearestLive picks the live, non-excluded node closest (in the latency
// coordinate plane) to a dead host — where a zombie's orphaned service
// re-instantiates. Deterministic: ascending node-id scan, strict
// improvement.
func (co *Coordinator) nearestLive(dead topology.NodeID) (topology.NodeID, bool) {
	env := co.Dep.Env
	at := env.VecCoord(dead)
	best, bestD := topology.NodeID(-1), 0.0
	for i := 0; i < env.Topo.NumNodes(); i++ {
		n := topology.NodeID(i)
		if n == dead || co.Exclude[n] {
			continue
		}
		if d := env.VecCoord(n).Distance(at); best < 0 || d < bestD {
			best, bestD = n, d
		}
	}
	return best, best >= 0
}

// HandleFailures consumes a batch of failure-detector events: Died
// nodes repair in one sweep, Recovered nodes become placement targets
// again. Suspected events are ignored — repair waits for confirmation.
func (co *Coordinator) HandleFailures(events []failure.Event, cancel <-chan struct{}) (RepairStats, error) {
	var dead []topology.NodeID
	for _, ev := range events {
		switch ev.Kind {
		case failure.Died:
			dead = append(dead, ev.Node)
		case failure.Recovered:
			if co.Exclude != nil {
				delete(co.Exclude, ev.Node)
			}
			delete(co.dead, ev.Node)
			// A recovered node rejoins the DHT and republishes its
			// coordinate, becoming a mapping target again.
			if cat := co.Dep.Env.Catalog(); cat != nil {
				_ = cat.Rejoin(ev.Node, co.Dep.Env.Point(ev.Node))
			}
		}
	}
	if len(dead) == 0 && !co.retryRepair {
		return RepairStats{}, nil
	}
	return co.Repair(dead, cancel)
}

// RunWithRepair drives continuous adaptation with failure recovery:
// every interval the coordinator first consumes the detector's events —
// repairing circuits off confirmed-dead nodes — and then runs one
// incremental sweep→migrate→settle round, until stop fires. The caller
// must be a registered virtual-clock actor (same contract as Run);
// under the virtual clock the whole loop, crashes included, is
// deterministic.
func (co *Coordinator) RunWithRepair(det *failure.Detector, interval time.Duration, stop <-chan struct{}) (RunStats, RepairStats, error) {
	if interval <= 0 {
		interval = time.Second
	}
	clk := co.clock()
	var rs RunStats
	var rep RepairStats
	for {
		if clk.SleepOrDone(interval, stop) {
			return rs, rep, nil
		}
		r, err := co.HandleFailures(det.TakeEvents(), stop)
		rep.add(r)
		if err != nil {
			return rs, rep, err
		}
		st, err := co.SweepIncremental(stop)
		if err != nil {
			return rs, rep, err
		}
		rs.Sweeps++
		if st.FullSweep {
			rs.FullSweeps++
		}
		rs.Migrated += st.Migrated
		rs.ServicesEvaluated += st.ServicesEvaluated
		rs.PredictedGain += st.PredictedGain
		rs.UsageGain += st.UsageGain
		rs.Last = st
		if st.Cancelled {
			return rs, rep, nil
		}
	}
}
