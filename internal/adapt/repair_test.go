package adapt

import (
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/failure"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// operatorVictim picks a node that hosts at least one movable operator
// and no pinned service of any circuit — killing it must be fully
// repairable.
func operatorVictim(t *testing.T, f *fixture) topology.NodeID {
	t.Helper()
	pinned := map[topology.NodeID]bool{}
	for _, run := range f.runs {
		for _, s := range run.Circuit.Services {
			if s.Pinned {
				pinned[s.Node] = true
			}
		}
	}
	victim := topology.NodeID(-1)
	for _, run := range f.runs {
		for _, s := range run.Circuit.UnpinnedServices() {
			if !pinned[s.Node] {
				victim = s.Node
			}
		}
	}
	if victim < 0 {
		t.Fatal("no operator host free of pinned services; adjust the seed")
	}
	return victim
}

func TestRepairMovesServicesOffDeadNode(t *testing.T) {
	f := newFixture(t, 71, 4)
	f.clk.Sleep(2 * time.Second)
	victim := operatorVictim(t, f)

	f.net.SetNodeDown(victim, true)
	f.clk.Sleep(time.Second) // undetected outage: tuples drop at the corpse
	before := make([]int, len(f.runs))
	for i, run := range f.runs {
		before[i] = run.Measure().TuplesOut
	}

	st, err := f.co.Repair([]topology.NodeID{victim}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadNodes != 1 || st.Repaired == 0 || st.DataPlane == 0 {
		t.Fatalf("repair stats %+v, want dead=1 and data-plane repairs", st)
	}
	if st.CancelledCircuits != 0 {
		t.Fatalf("repair cancelled %d circuits off a pure operator host", st.CancelledCircuits)
	}
	if !f.co.Exclude[victim] {
		t.Fatal("dead node not excluded from future placement")
	}
	for id, c := range f.co.Dep.Circuits() {
		for i, s := range c.Services {
			if s.Node == victim {
				t.Fatalf("q%d service %d still placed on the dead node", id, i)
			}
		}
	}
	requireConsistent(t, f)

	f.clk.Sleep(2 * time.Second)
	resumed := false
	for i, run := range f.runs {
		if run.Measure().TuplesOut > before[i] {
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("no circuit resumed delivery after repair")
	}
	if v := f.net.Metrics.Counter("msgs.down_dropped").Value(); v == 0 {
		t.Fatal("a 1s outage dropped nothing — the scenario did not exercise loss")
	}
}

func TestRepairCancelsCircuitWithDeadConsumer(t *testing.T) {
	f := newFixture(t, 72, 4)
	f.clk.Sleep(time.Second)
	victim := f.runs[0].Circuit.Query.Consumer
	deployed := f.co.Dep.NumDeployed()

	f.net.SetNodeDown(victim, true)
	st, err := f.co.Repair([]topology.NodeID{victim}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.CancelledCircuits == 0 {
		t.Fatalf("repair stats %+v: circuit with a dead consumer not cancelled", st)
	}
	if _, ok := f.co.Dep.Circuit(f.runs[0].Circuit.Query.ID); ok {
		t.Fatal("doomed circuit still deployed")
	}
	if got := f.co.Dep.NumDeployed(); got != deployed-st.CancelledCircuits {
		t.Fatalf("NumDeployed = %d after cancelling %d of %d", got, st.CancelledCircuits, deployed)
	}
	// Survivors keep a consistent control/data plane and none of their
	// services sit on the corpse.
	for id, c := range f.co.Dep.Circuits() {
		for i, s := range c.Services {
			if s.Node == victim {
				t.Fatalf("surviving q%d service %d on the dead node", id, i)
			}
		}
	}
}

// TestRepairAdoptedInstance closes the un-evacuable-node gap end to
// end: the owner circuit is gone (its zombie executes the shared
// operator), the operator's host crashes, and Repair must re-own and
// re-instantiate the instance for the surviving subscriber with no
// manual intervention.
func TestRepairAdoptedInstance(t *testing.T) {
	f := newFixture(t, 73, 0)
	stubs := f.env.Topo.StubNodeIDs()
	reg := optimizer.NewRegistry()
	dep := optimizer.NewDeployment(f.env, reg)
	opt := &optimizer.Integrated{Env: f.env, Mapper: placement.OracleMapper{Source: f.env}}

	owner := query.Query{ID: 1, Consumer: stubs[3], Streams: []query.StreamID{0, 1}}
	res, err := opt.Optimize(owner)
	if err != nil {
		t.Fatal(err)
	}
	// Host the shared operator away from every endpoint: the scenario
	// kills its node, and a co-located producer would (correctly) leave
	// nothing to repair toward.
	pinnedNodes := map[topology.NodeID]bool{stubs[8]: true}
	for _, s := range res.Circuit.Services {
		if s.Pinned {
			pinnedNodes[s.Node] = true
		}
	}
	var operatorHost topology.NodeID = -1
	for _, n := range stubs {
		if !pinnedNodes[n] {
			operatorHost = n
			break
		}
	}
	if operatorHost < 0 {
		t.Fatal("no endpoint-free stub")
	}
	for _, s := range res.Circuit.Services {
		if !s.Pinned && s.Plan != nil {
			s.Node = operatorHost
		}
	}
	if err := dep.Deploy(res.Circuit); err != nil {
		t.Fatal(err)
	}
	rootSig := res.Circuit.Root().Signature
	var inst *optimizer.ServiceInstance
	for _, i := range reg.Instances() {
		if i.Signature == rootSig {
			inst = i
		}
	}
	if inst == nil {
		t.Fatal("owner deployment registered no root instance")
	}
	b := &optimizer.Builder{Env: f.env}
	consQ := query.Query{ID: 2, Consumer: stubs[8], Streams: []query.StreamID{0, 1}}
	consC, err := b.Skeleton(consQ, res.Circuit.Plan, func(n *query.PlanNode) *optimizer.ServiceInstance {
		if n.Signature() == inst.Signature {
			return inst
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Deploy(consC); err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.Deploy(res.Circuit); err != nil {
		t.Fatal(err)
	}
	consRun, err := f.engine.Deploy(consC)
	if err != nil {
		t.Fatal(err)
	}
	co := &Coordinator{Dep: dep, Engine: f.engine, Clock: f.clk,
		Mapper: placement.OracleMapper{Source: f.env}}
	f.clk.Sleep(2 * time.Second)

	// Owner leaves; a surviving consumer adopts the instance.
	if err := f.engine.Stop(owner.ID); err != nil {
		t.Fatal(err)
	}
	if err := dep.Cancel(owner.ID); err != nil {
		t.Fatal(err)
	}
	if inst.Owner != consQ.ID {
		t.Fatalf("instance owner q%d after owner cancel, want q%d", inst.Owner, consQ.ID)
	}
	victim := inst.Node
	for _, s := range consC.Services {
		if s.Pinned && !s.Reused && s.Node == victim {
			t.Fatalf("instance host %d doubles as a consumer endpoint; adjust the seed", victim)
		}
	}

	f.net.SetNodeDown(victim, true)
	f.clk.Sleep(500 * time.Millisecond)
	st, err := co.Repair([]topology.NodeID{victim}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Adopted != 1 {
		t.Fatalf("repair stats %+v, want exactly one adopted re-own", st)
	}
	if inst.Node == victim {
		t.Fatal("instance still on the dead node")
	}
	for i, s := range consC.Services {
		if s.Reused && s.ReusedFrom == inst && s.Node != inst.Node {
			t.Fatalf("consumer service %d placed on %d but instance lives on %d", i, s.Node, inst.Node)
		}
	}
	before := consRun.Measure().TuplesOut
	f.clk.Sleep(2 * time.Second)
	if got := consRun.Measure().TuplesOut; got <= before {
		t.Fatalf("subscriber starved after adopted repair: %d → %d", before, got)
	}
}

// TestTicketTTLFailsOverInterruptedSweep: a sweep whose settle is cut
// short leaves handoffs in flight; expired tickets must fail over
// (routes restored, tickets aborted) instead of committing blind.
func TestTicketTTLFailsOverInterruptedSweep(t *testing.T) {
	f := newFixture(t, 74, 4)
	f.clk.Sleep(2 * time.Second)
	victim := operatorVictim(t, f)
	f.env.SetBackgroundLoad(victim, 5.0)

	f.co.TicketTTL = 500 * time.Microsecond
	cancel := make(chan struct{})
	f.clk.AfterFunc(time.Millisecond, func() { f.clk.Signal(cancel) })
	st, err := f.co.Sweep(cancel)
	if err != nil {
		t.Fatal(err)
	}
	f.co.TicketTTL = 0
	if st.Planned == 0 {
		t.Fatal("overloaded node produced no moves")
	}
	if !st.Cancelled {
		t.Fatal("settle was not interrupted — the scenario is vacuous")
	}
	if st.Aborted == 0 {
		t.Fatalf("sweep stats %+v: no expired ticket failed over", st)
	}
	if st.Migrated+st.Aborted < st.Planned {
		t.Fatalf("sweep stats %+v: moves unaccounted for", st)
	}
	requireConsistent(t, f)
	f.clk.Sleep(2 * time.Second)
	requireConsistent(t, f)
}

// TestRepairEndToEndWithDetector is the tentpole integration: ambient
// loss, a scheduled crash, heartbeat-driven detection, and automatic
// repair — zero manual Evacuate calls — all deterministic.
func TestRepairEndToEndWithDetector(t *testing.T) {
	runOnce := func() (RunStats, RepairStats, map[query.QueryID][]topology.NodeID) {
		f := newFixture(t, 75, 3)
		victim := operatorVictim(t, f)
		f.net.InstallFaults(overlay.FaultPlan{
			Seed:     75,
			DropProb: 0.01,
			Crashes:  []overlay.NodeCrash{{Node: victim, At: 2 * time.Second}},
		})
		hb := f.net.StartHeartbeatsOpts(100*time.Millisecond, 0.05,
			overlay.HeartbeatOpts{SkipDownTargets: true})
		det := failure.New(f.net, failure.DefaultConfig(100*time.Millisecond))
		defer func() { det.Stop(); hb.Stop() }()
		f.co.Threshold = 0.3
		f.co.TicketTTL = 5 * time.Second

		stop := make(chan struct{})
		f.clk.AfterFunc(8*time.Second, func() { f.clk.Signal(stop) })
		rs, rep, err := f.co.RunWithRepair(det, 500*time.Millisecond, stop)
		if err != nil {
			t.Fatal(err)
		}
		if rep.DeadNodes != 1 || rep.Repaired == 0 {
			t.Fatalf("repair stats %+v, want the crash detected and repaired", rep)
		}
		for id, c := range f.co.Dep.Circuits() {
			for i, s := range c.Services {
				if s.Node == victim {
					t.Fatalf("q%d service %d still on the crashed node", id, i)
				}
			}
		}
		requireConsistent(t, f)
		placements := make(map[query.QueryID][]topology.NodeID)
		for _, run := range f.runs {
			c := run.Circuit
			nodes := make([]topology.NodeID, len(c.Services))
			for i, s := range c.Services {
				nodes[i] = s.Node
			}
			placements[c.Query.ID] = nodes
		}
		return rs, rep, placements
	}
	rs1, rep1, p1 := runOnce()
	rs2, rep2, p2 := runOnce()
	if rs1 != rs2 || rep1 != rep2 {
		t.Fatalf("same-seed runs diverge:\n %+v %+v\n %+v %+v", rs1, rep1, rs2, rep2)
	}
	for id, nodes := range p1 {
		for i, n := range nodes {
			if p2[id][i] != n {
				t.Fatalf("final placements diverge: q%d service %d on %d vs %d", id, i, n, p2[id][i])
			}
		}
	}
}
