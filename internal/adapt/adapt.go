// Package adapt is the SBON's runtime adaptation layer: the bridge
// between the control plane (optimizer.Reoptimizer planning service
// moves over the cost space, optimizer.Deployment accounting load) and
// the data plane (stream.Engine executing circuits and migrating
// operators under live traffic).
//
// One Coordinator.Sweep is the paper's continuous-optimization unit made
// operational:
//
//	sweep   — Reoptimizer.Plan produces a typed MigrationPlan without
//	          touching anything; the coordinator selects the
//	          highest-gain moves within its migration budget.
//	migrate — each selected move opens a two-phase Deployment ticket
//	          (load charged on both hosts — the cost space repels
//	          further placements from nodes absorbing a handoff) and
//	          starts the engine's buffered handoff for circuits that
//	          are executing.
//	settle  — the coordinator sleeps the clock past every migration's
//	          scheduled completion (a tracked, cancellable
//	          SleepOrDone), then commits the tickets, returning load
//	          accounting to its single-host fixed point.
//
// Shared service instances (multi-query reuse) migrate through their
// owning circuit only: the re-optimizer never proposes a move of a
// Reused service, Deployment.BeginMigration rejects one defensively,
// and when the owner's move commits, the instance re-binds for every
// consumer circuit while the engine flips all subscribers' routes at
// cutover.
//
// SweepIncremental is the delta-cost variant: the re-optimizer consumes
// the environment's delta log and re-plans only affected circuits, and
// Run strings such rounds into a clock-paced continuous adaptation
// loop — the paper's continuous optimization running at the cost of
// what changed, not of what is deployed.
//
// Under simtime.VirtualClock the whole loop is deterministic: same seed,
// same plan, same handoff timings, same settled state.
package adapt

import (
	"errors"
	"sort"
	"time"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/stream"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// Coordinator drives sweep→migrate→settle loops over a deployment and
// (optionally) the engine executing its circuits.
type Coordinator struct {
	Dep *optimizer.Deployment
	// Engine executes the deployment's circuits; nil means control-plane
	// only (moves commit instantly, nothing buffers or drains).
	Engine *stream.Engine
	// Clock paces settle waits (default: real clock; pass the engine's
	// virtual clock for deterministic runs).
	Clock simtime.Clock

	// Threshold is the re-optimizer's hysteresis (default 0.05).
	Threshold float64
	// Budget caps migrations per sweep, highest predicted gain first
	// (0 = unbounded). Bounding the per-sweep budget is what spreads a
	// large adaptation over several sweeps instead of thrashing the
	// overlay in one.
	Budget int
	// Exclude bars nodes from being chosen as migration targets
	// (departed or draining hosts).
	Exclude map[topology.NodeID]bool
	// SettleMargin is extra clock time slept past the last migration's
	// scheduled end (default one simulated second worth of clock time
	// is NOT assumed — default 0; callers add margin when their model
	// needs it).
	SettleMargin time.Duration
	// TicketTTL, when positive, stamps every migration ticket with a
	// deadline that far past Begin. A handoff still pending at commit
	// time past its deadline — a host died mid-flight, or a teardown
	// stalled — is failed over instead of committed blind: the engine
	// restores a consistent route (AbortForFailure) and the ticket
	// commits or aborts to match where the operator actually ended up.
	TicketTTL time.Duration

	// Placer, Mapper, Model override the re-optimizer's components
	// (defaults as in optimizer.Reoptimizer).
	Placer placement.VirtualPlacer
	Mapper placement.Mapper
	Model  optimizer.LatencyModel

	// Tracer, when non-nil, records the adaptation loop's spans — one
	// per plan→migrate→settle round, one per repair round with
	// per-circuit outcomes — and is handed to the re-optimizer for its
	// per-move decision records.
	Tracer *trace.Tracer

	// ro is the coordinator's persistent re-optimizer: incremental
	// sweeps carry an epoch watermark and a pending-move set across
	// rounds, so the same instance must serve every sweep.
	ro *optimizer.Reoptimizer

	// dead is the cumulative confirmed-dead set. Repair plans over all
	// of it, not just the newest deaths, so a move aborted in one round
	// (its target died undetected, say) is retried in the next instead
	// of stranding the service on the corpse. A Recovered event clears
	// the node. retryRepair marks that the last round left strands.
	dead        map[topology.NodeID]bool
	retryRepair bool

	// roundSpan is the open "round" span while Run/RunWithRepair drives
	// a sweep, so the migrate/settle/repair spans it triggers nest under
	// it in the trace. Single-actor access only (the loop's own
	// goroutine), no synchronization.
	roundSpan trace.Span
}

// beginSpan opens a span nested under the current round (when one is
// open) or at the root otherwise.
func (co *Coordinator) beginSpan(cat, name string, args ...trace.Arg) trace.Span {
	if co.roundSpan.Active() {
		return co.roundSpan.Child(cat, name, args...)
	}
	return co.Tracer.Begin(cat, name, args...)
}

// SweepStats reports one adaptation round.
type SweepStats struct {
	ServicesEvaluated int
	// Planned is the number of moves the sweep selected (post-budget);
	// Migrated of those reached Commit. DataPlane counts moves that ran
	// the engine's live handoff (the rest were control-plane only).
	Planned   int
	Migrated  int
	DataPlane int
	Aborted   int
	// Unmovable counts pinned services stuck on victim nodes
	// (evacuations only).
	Unmovable int
	// PredictedGain sums the model-estimated serviceCost improvement of
	// committed moves; UsageGain sums their incident network-usage part.
	PredictedGain float64
	UsageGain     float64
	// Buffered and Forwarded aggregate the data-plane handoff counters.
	Buffered  int
	Forwarded int
	// SettleDuration is clock time from the first migration start until
	// every handoff completed and committed.
	SettleDuration time.Duration
	// Cancelled reports that the settle wait was cut short by the
	// cancel channel; tickets are still committed so the control plane
	// matches the handoffs already in flight.
	Cancelled bool
	// DirtyNodes, AffectedCircuits, and FullSweep carry the incremental
	// planner's statistics (SweepIncremental only): how large the
	// consumed delta was, how many circuits it forced back through
	// planning, and whether the round degenerated to a full sweep.
	DirtyNodes       int
	AffectedCircuits int
	FullSweep        bool
}

// settleGrace bounds the extra per-migration wait granted to straggling
// teardown timers under the real clock.
const settleGrace = 100 * time.Millisecond

// reopt returns the coordinator's re-optimizer, refreshed with the
// current configuration. The instance persists across sweeps: it holds
// the incremental bookkeeping (delta-log watermark, pending moves).
func (co *Coordinator) reopt() *optimizer.Reoptimizer {
	if co.ro == nil {
		co.ro = optimizer.NewReoptimizer(co.Dep)
	}
	co.ro.Placer = co.Placer
	co.ro.Mapper = co.Mapper
	co.ro.Model = co.Model
	co.ro.ImprovementThreshold = co.Threshold
	co.ro.Tracer = co.Tracer
	// Confirmed-dead nodes stay excluded even when the caller swaps in a
	// fresh Exclude set between rounds (the facade does this per call).
	if len(co.dead) > 0 {
		if co.Exclude == nil {
			co.Exclude = make(map[topology.NodeID]bool, len(co.dead))
		}
		for n := range co.dead {
			co.Exclude[n] = true
		}
	}
	co.ro.Exclude = co.Exclude
	return co.ro
}

func (co *Coordinator) clock() simtime.Clock {
	if co.Clock != nil {
		return co.Clock
	}
	return simtime.Real()
}

// Sweep runs one sweep→migrate→settle round and returns its statistics.
// cancel (optional) aborts the settle wait early.
func (co *Coordinator) Sweep(cancel <-chan struct{}) (SweepStats, error) {
	plan, err := co.reopt().Plan()
	if err != nil {
		return SweepStats{}, err
	}
	return co.execute(plan, cancel, co.Budget)
}

// SweepIncremental runs one incremental sweep→migrate→settle round:
// the re-optimizer consumes the environment's delta log and re-plans
// only the circuits the delta can affect (optimizer.PlanIncremental),
// producing the same moves a full Sweep would. The first round, and any
// round whose delta is too large to track, degenerates to a full sweep.
func (co *Coordinator) SweepIncremental(cancel <-chan struct{}) (SweepStats, error) {
	plan, ist, err := co.reopt().PlanIncremental()
	if err != nil {
		return SweepStats{}, err
	}
	stats, err := co.execute(plan, cancel, co.Budget)
	stats.DirtyNodes = ist.DirtyNodes
	stats.AffectedCircuits = ist.AffectedCircuits
	stats.FullSweep = ist.FullSweep
	return stats, err
}

// RunStats aggregates a continuous adaptation run.
type RunStats struct {
	// Sweeps counts completed rounds; FullSweeps of those degenerated
	// to a full re-plan.
	Sweeps     int
	FullSweeps int
	// Migrated, ServicesEvaluated, PredictedGain, and UsageGain sum the
	// per-round statistics; Last is the final round's.
	Migrated          int
	ServicesEvaluated int
	PredictedGain     float64
	UsageGain         float64
	Last              SweepStats
}

// Run drives continuous adaptation: every interval the coordinator
// consumes the environment's delta log and runs one incremental
// sweep→migrate→settle round, until stop fires (during a wait or a
// settle). This is the paper's "continuous optimization" made
// operational at delta cost: a quiet overlay re-plans nothing.
//
// The wait is a tracked SleepOrDone, so under a virtual clock the
// caller must be a registered actor and the loop is deterministic:
// same seed, same delta schedule, same rounds, same moves.
func (co *Coordinator) Run(interval time.Duration, stop <-chan struct{}) (RunStats, error) {
	if interval <= 0 {
		interval = time.Second
	}
	clk := co.clock()
	var rs RunStats
	for {
		if clk.SleepOrDone(interval, stop) {
			return rs, nil
		}
		sp := co.Tracer.Begin("adapt", "round", trace.Int("n", rs.Sweeps+1))
		co.roundSpan = sp
		st, err := co.SweepIncremental(stop)
		co.roundSpan = trace.Span{}
		if err != nil {
			sp.End(trace.Str("error", err.Error()))
			return rs, err
		}
		sp.End(trace.Int("migrated", st.Migrated), trace.Int("evaluated", st.ServicesEvaluated))
		rs.Sweeps++
		if st.FullSweep {
			rs.FullSweeps++
		}
		rs.Migrated += st.Migrated
		rs.ServicesEvaluated += st.ServicesEvaluated
		rs.PredictedGain += st.PredictedGain
		rs.UsageGain += st.UsageGain
		rs.Last = st
		if st.Cancelled {
			return rs, nil
		}
	}
}

// Evacuate force-migrates every unpinned service off the victim nodes —
// the graceful-drain step that precedes killing them — and settles. The
// victims are excluded as targets for this and any later sweep only if
// the caller also adds them to Exclude.
func (co *Coordinator) Evacuate(victims []topology.NodeID, cancel <-chan struct{}) (SweepStats, error) {
	vs := make(map[topology.NodeID]bool, len(victims))
	for _, n := range victims {
		vs[n] = true
	}
	plan, err := co.reopt().PlanEvacuation(vs)
	if err != nil {
		return SweepStats{}, err
	}
	// Never budget an evacuation: a truncated drain would leave services
	// on a node the caller is about to kill.
	return co.execute(plan, cancel, 0)
}

// Plan runs the configured re-optimizer's sweep and returns the typed
// migration plan without executing it — the hook for callers with their
// own selection policy (e.g. usage-gain-filtered adaptation), who then
// hand the edited plan to Execute.
func (co *Coordinator) Plan() (optimizer.MigrationPlan, error) {
	return co.reopt().Plan()
}

// Execute walks an externally selected migration plan through the
// two-phase protocol, bypassing the Coordinator's own budget selection.
func (co *Coordinator) Execute(plan optimizer.MigrationPlan, cancel <-chan struct{}) (SweepStats, error) {
	return co.execute(plan, cancel, 0)
}

// execute walks a migration plan through the two-phase protocol: Begin
// every ticket (double-charging in-flight load), start the data-plane
// handoffs, settle, Commit. budget caps the moves taken (0 = all).
func (co *Coordinator) execute(plan optimizer.MigrationPlan, cancel <-chan struct{}, budget int) (SweepStats, error) {
	stats := SweepStats{
		ServicesEvaluated: plan.ServicesEvaluated,
		Unmovable:         plan.Unmovable,
	}
	moves := plan.Moves
	if budget > 0 && len(moves) > budget {
		moves = append([]optimizer.Migration(nil), moves...)
		sort.SliceStable(moves, func(i, j int) bool {
			return moves[i].PredictedGain > moves[j].PredictedGain
		})
		moves = moves[:budget]
	}
	stats.Planned = len(moves)
	if len(moves) == 0 {
		return stats, nil
	}

	sp := co.beginSpan("adapt", "migrate", trace.Int("planned", len(moves)))
	clk := co.clock()
	start := clk.Now()
	type inflight struct {
		ticket *optimizer.MigrationTicket
		mig    *stream.Migration
		gain   float64
		usage  float64
	}
	var flights []inflight
	var settleUntil time.Time
	for _, m := range moves {
		ticket, err := co.Dep.BeginMigration(m)
		if err != nil {
			// The plan was computed against current state; Begin can
			// only fail if the deployment changed underneath us.
			stats.Aborted++
			continue
		}
		if co.TicketTTL > 0 {
			ticket.Deadline = clk.Now().Add(co.TicketTTL)
		}
		fl := inflight{ticket: ticket, gain: m.PredictedGain, usage: m.UsageGain}
		if co.Engine != nil {
			mig, err := co.Engine.MigrateUnder(sp, m.Query, m.Service, m.To)
			switch {
			case err == nil:
				fl.mig = mig
				if mig.ScheduledEnd.After(settleUntil) {
					settleUntil = mig.ScheduledEnd
				}
			case errors.Is(err, stream.ErrNotRunning):
				// Control-plane-only circuit: nothing to hand off.
			default:
				_ = ticket.Abort()
				stats.Aborted++
				continue
			}
		}
		flights = append(flights, fl)
	}

	// Settle: sleep the clock strictly past the last scheduled handoff
	// end — the extra nanosecond matters: the virtual clock breaks
	// equal-timestamp ties FIFO, and the settle wake (scheduled now) has
	// a lower sequence number than teardown timers scheduled at cutover,
	// so a wake at exactly ScheduledEnd would fire before them. The wait
	// is tracked (SleepOrDone), so virtual-time quiescence holds, and
	// cancellable for shutdown paths.
	if !settleUntil.IsZero() {
		wait := settleUntil.Sub(clk.Now()) + co.SettleMargin + time.Nanosecond
		if wait > 0 {
			ssp := sp.Child("adapt", "settle", trace.Dur("wait_ms", wait))
			stats.Cancelled = clk.SleepOrDone(wait, cancel)
			if stats.Cancelled {
				ssp.End(trace.Str("outcome", "cancelled"))
			} else {
				ssp.End()
			}
		}
	}

	// Under the real clock, teardown timers can lag the settle sleep;
	// grant each still-pending handoff a bounded grace wait so the
	// migration records (Buffered/Forwarded/Aborted) are final before
	// they are read. Under the virtual clock the channels are already
	// closed and these return instantly.
	if !stats.Cancelled {
		for _, fl := range flights {
			if fl.mig != nil {
				// Fast-path returns immediately when Done is closed.
				clk.SleepOrDone(settleGrace, fl.mig.Done())
			}
		}
	}

	for _, fl := range flights {
		if fl.mig != nil {
			// Counters are written by the handoff's timer callbacks and
			// published by closing Done; read them only after observing
			// the close (the happens-before edge). A handoff still
			// pending here — cancelled settle, or a real-clock teardown
			// outlasting the grace — completes on its own: commit the
			// ticket so the control plane matches where the data plane
			// is headed, without touching its in-flight counters.
			select {
			case <-fl.mig.Done():
				stats.Buffered += fl.mig.Buffered
				stats.Forwarded += fl.mig.Forwarded
				if fl.mig.Aborted {
					_ = fl.ticket.Abort()
					stats.Aborted++
					continue
				}
			default:
				// A handoff still pending past its ticket deadline has
				// lost a host or stalled: fail it over now rather than
				// committing blind. AbortForFailure reports whether the
				// operator reached the target, which decides the ticket.
				if fl.ticket.Expired(clk.Now()) {
					if !fl.mig.AbortForFailure() {
						stats.Buffered += fl.mig.Buffered
						_ = fl.ticket.Abort()
						stats.Aborted++
						continue
					}
				}
			}
			stats.DataPlane++
		}
		if err := fl.ticket.Commit(); err != nil {
			stats.Aborted++
			continue
		}
		stats.Migrated++
		stats.PredictedGain += fl.gain
		stats.UsageGain += fl.usage
	}
	stats.SettleDuration = clk.Since(start)
	sp.End(trace.Int("migrated", stats.Migrated), trace.Int("aborted", stats.Aborted),
		trace.Int("data_plane", stats.DataPlane), trace.Num("gain", stats.PredictedGain))
	return stats, nil
}
