package adapt

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/stream"
	"github.com/hourglass/sbon/internal/topology"
)

// fixture is a full control-plane + data-plane stack on a virtual clock.
type fixture struct {
	env    *optimizer.Env
	dep    *optimizer.Deployment
	net    *overlay.Network
	engine *stream.Engine
	clk    *simtime.VirtualClock
	runs   []*stream.Running
	co     *Coordinator
}

func newFixture(t *testing.T, seed int64, queries int) *fixture {
	t.Helper()
	cfg := topology.Config{
		TransitDomains:      2,
		TransitNodes:        2,
		StubsPerTransit:     2,
		StubNodes:           6,
		IntraStubLatency:    [2]float64{1, 4},
		StubUplinkLatency:   [2]float64{2, 8},
		IntraTransitLatency: [2]float64{5, 15},
		InterTransitLatency: [2]float64{20, 50},
		ExtraStubEdgeProb:   0.2,
	}
	topo := topology.MustGenerate(cfg, rand.New(rand.NewSource(seed)))
	stats, err := query.NewCatalog(0.8)
	if err != nil {
		t.Fatal(err)
	}
	stubs := topo.StubNodeIDs()
	for i := 0; i < 4; i++ {
		if err := stats.AddStream(query.StreamID(i), stubs[i*5%len(stubs)], 50); err != nil {
			t.Fatal(err)
		}
	}
	envCfg := optimizer.DefaultEnvConfig(seed)
	envCfg.UseDHT = false
	envCfg.VivaldiRounds = 20
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		t.Fatal(err)
	}
	ncfg := overlay.VirtualConfig()
	clk := ncfg.Clock.(*simtime.VirtualClock)
	clk.Register()
	net := overlay.NewNetwork(topo, ncfg)
	net.Start()
	eng := stream.NewEngine(net, topo, stream.DefaultEngineConfig())
	dep := optimizer.NewDeployment(env, nil)
	t.Cleanup(func() {
		eng.Close()
		net.Stop()
		clk.Unregister()
		clk.Stop()
	})

	f := &fixture{env: env, dep: dep, net: net, engine: eng, clk: clk}
	opt := &optimizer.Integrated{Env: env, Mapper: placement.OracleMapper{Source: env}}
	shapes := [][]query.StreamID{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}}
	for i := 0; i < queries; i++ {
		q := query.Query{
			ID:       query.QueryID(i + 1),
			Consumer: stubs[(7*i+3)%len(stubs)],
			Streams:  shapes[i%len(shapes)],
		}
		res, err := opt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.Deploy(res.Circuit); err != nil {
			t.Fatal(err)
		}
		run, err := eng.Deploy(res.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		f.runs = append(f.runs, run)
	}
	f.co = &Coordinator{
		Dep:    dep,
		Engine: eng,
		Clock:  clk,
		Mapper: placement.OracleMapper{Source: env},
	}
	return f
}

// requireConsistent asserts the control plane and data plane agree on
// every service's host.
func requireConsistent(t *testing.T, f *fixture) {
	t.Helper()
	for _, run := range f.runs {
		c := run.Circuit
		for i, s := range c.Services {
			if s.Plan == nil || s.Plan.Kind == query.KindSource {
				continue
			}
			if got := run.Host(i); got != s.Node {
				t.Fatalf("q%d service %d: engine on %d, deployment says %d", c.Query.ID, i, got, s.Node)
			}
		}
	}
}

func requireNoLossCounters(t *testing.T, f *fixture) {
	t.Helper()
	if v := f.net.Metrics.Counter("msgs.unrouted").Value(); v != 0 {
		t.Fatalf("msgs.unrouted = %v", v)
	}
	if v := f.net.Metrics.Counter("msgs.down_dropped").Value(); v != 0 {
		t.Fatalf("msgs.down_dropped = %v", v)
	}
}

func TestSweepMigratesRunningCircuits(t *testing.T) {
	f := newFixture(t, 41, 4)
	f.clk.Sleep(2 * time.Second)

	// Overload the busiest operator host so the sweep has moves.
	hosts := map[topology.NodeID]int{}
	for _, run := range f.runs {
		for _, s := range run.Circuit.UnpinnedServices() {
			hosts[s.Node]++
		}
	}
	var victim topology.NodeID
	best := -1
	for n, k := range hosts {
		if k > best || (k == best && n < victim) {
			victim, best = n, k
		}
	}
	f.env.SetBackgroundLoad(victim, 5.0)

	st, err := f.co.Sweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Migrated == 0 {
		t.Fatal("sweep migrated nothing off an overloaded node")
	}
	if st.DataPlane == 0 {
		t.Fatal("no data-plane handoffs despite running circuits")
	}
	if st.SettleDuration <= 0 {
		t.Fatal("no settle time recorded")
	}
	requireConsistent(t, f)

	f.clk.Sleep(time.Second)
	for _, run := range f.runs {
		run.HaltProducers()
	}
	f.clk.Sleep(time.Second)
	var produced, delivered int
	for _, run := range f.runs {
		produced += run.TuplesProduced()
		delivered += run.Measure().TuplesOut
	}
	// Joins don't conserve counts; loss is asserted via the counters
	// plus delivery still flowing.
	if produced == 0 || delivered == 0 {
		t.Fatalf("dataflow dead after sweep: produced %d delivered %d", produced, delivered)
	}
	requireNoLossCounters(t, f)
}

func TestSweepBudgetCapsMigrations(t *testing.T) {
	f := newFixture(t, 42, 5)
	f.clk.Sleep(time.Second)
	// Overload several hosts.
	for _, run := range f.runs[:3] {
		for _, s := range run.Circuit.UnpinnedServices() {
			f.env.SetBackgroundLoad(s.Node, 4.0)
			break
		}
	}
	f.co.Budget = 1
	st, err := f.co.Sweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Planned > 1 || st.Migrated > 1 {
		t.Fatalf("budget 1 but planned %d / migrated %d", st.Planned, st.Migrated)
	}
	requireConsistent(t, f)
}

func TestEvacuateDrainsNodeBeforeKill(t *testing.T) {
	f := newFixture(t, 43, 4)
	f.clk.Sleep(time.Second)

	// Victim: any node hosting at least one unpinned service and no
	// pinned endpoints.
	pinned := map[topology.NodeID]bool{}
	hosts := map[topology.NodeID]int{}
	for _, run := range f.runs {
		for _, s := range run.Circuit.Services {
			if s.Plan == nil || s.Plan.Kind == query.KindSource || s.Pinned {
				pinned[s.Node] = true
				continue
			}
			hosts[s.Node]++
		}
	}
	victim := topology.NodeID(-1)
	for n := range hosts {
		if !pinned[n] && (victim < 0 || n < victim) {
			victim = n
		}
	}
	if victim < 0 {
		t.Skip("no drainable victim in this fixture")
	}

	f.co.Exclude = map[topology.NodeID]bool{victim: true}
	st, err := f.co.Evacuate([]topology.NodeID{victim}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Migrated != hosts[victim] {
		t.Fatalf("evacuated %d services, victim hosted %d", st.Migrated, hosts[victim])
	}
	requireConsistent(t, f)
	for _, run := range f.runs {
		for _, s := range run.Circuit.Services {
			if s.Plan != nil && s.Plan.Kind != query.KindSource && s.Node == victim {
				t.Fatalf("service still bound to drained node %d", victim)
			}
		}
	}

	// Now the node can die without data loss.
	f.net.SetNodeDown(victim, true)
	f.clk.Sleep(2 * time.Second)
	requireNoLossCounters(t, f)
}

func TestSweepDeterministic(t *testing.T) {
	type outcome struct {
		migrated, dataPlane, buffered int
		settle                        time.Duration
		gain                          float64
	}
	runOnce := func() outcome {
		f := newFixture(t, 44, 4)
		f.clk.Sleep(time.Second)
		var victim topology.NodeID = -1
		for _, run := range f.runs {
			if u := run.Circuit.UnpinnedServices(); len(u) > 0 {
				victim = u[0].Node
				break
			}
		}
		f.env.SetBackgroundLoad(victim, 5.0)
		st, err := f.co.Sweep(nil)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{st.Migrated, st.DataPlane, st.Buffered, st.SettleDuration, st.PredictedGain}
	}
	a, b := runOnce(), runOnce()
	if a.migrated != b.migrated || a.dataPlane != b.dataPlane || a.buffered != b.buffered ||
		a.settle != b.settle || math.Abs(a.gain-b.gain) > 1e-12 {
		t.Fatalf("same-seed sweeps diverge:\n%+v\n%+v", a, b)
	}
}

// TestSettleReturnsLoadFixedPoint pins the two-phase release end-to-end:
// after a sweep settles, every node's load must equal background base
// plus exactly its currently hosted services.
func TestSettleReturnsLoadFixedPoint(t *testing.T) {
	f := newFixture(t, 45, 4)
	f.clk.Sleep(time.Second)
	var victim topology.NodeID = -1
	for _, run := range f.runs {
		if u := run.Circuit.UnpinnedServices(); len(u) > 0 {
			victim = u[0].Node
			break
		}
	}
	f.env.SetBackgroundLoad(victim, 5.0)
	if _, err := f.co.Sweep(nil); err != nil {
		t.Fatal(err)
	}
	perRate := f.env.Config().LoadPerRate
	hosted := map[topology.NodeID]float64{}
	for _, c := range f.dep.Circuits() {
		for _, s := range c.NewServices() {
			hosted[s.Node] += s.InRate * perRate
		}
	}
	// Each node's load minus its hosted services must be non-negative
	// (the base) and *stable*: a second control-plane-only sweep cycle
	// of Begin+Abort must not shift anything.
	before := map[topology.NodeID]float64{}
	for _, id := range f.env.NodeIDs() {
		resid := f.env.Load(id) - hosted[id]
		if resid < -1e-9 {
			t.Fatalf("node %d load %v below hosted services %v — dangling double charge", id, f.env.Load(id), hosted[id])
		}
		before[id] = f.env.Load(id)
	}
	plan, err := f.co.reopt().Plan()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range plan.Moves {
		tk, err := f.dep.BeginMigration(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Abort(); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range f.env.NodeIDs() {
		if math.Abs(f.env.Load(id)-before[id]) > 1e-9 {
			t.Fatalf("node %d load drifted %v → %v through Begin+Abort cycle", id, before[id], f.env.Load(id))
		}
	}
}

func TestSweepCancellable(t *testing.T) {
	f := newFixture(t, 46, 3)
	f.clk.Sleep(time.Second)
	var victim topology.NodeID = -1
	for _, run := range f.runs {
		if u := run.Circuit.UnpinnedServices(); len(u) > 0 {
			victim = u[0].Node
			break
		}
	}
	f.env.SetBackgroundLoad(victim, 5.0)
	cancel := make(chan struct{})
	// Fire the cancellation deterministically mid-settle via the clock.
	f.clk.AfterFunc(time.Millisecond, func() { f.clk.Signal(cancel) })
	st, err := f.co.Sweep(cancel)
	if err != nil {
		t.Fatal(err)
	}
	if st.Migrated > 0 && !st.Cancelled {
		// The settle may legitimately finish before 1ms if no data-plane
		// migrations were needed; only a started settle can be cut.
		if st.DataPlane > 0 && st.SettleDuration > time.Millisecond {
			t.Fatal("settle ignored cancellation")
		}
	}
	// Even cancelled, control and data plane must not diverge once the
	// engine's handoffs finish.
	f.clk.Sleep(2 * time.Second)
	requireConsistent(t, f)
}

// TestSweepWaitsForAllHandoffs is the regression test for the settle
// tie-break: the settle wake and the last teardown timer land on the
// same virtual instant, and FIFO sequence order would fire the wake
// first if the sleep did not outlast ScheduledEnd. Every migration must
// be fully complete (Done closed, counters final) when Sweep returns.
func TestSweepWaitsForAllHandoffs(t *testing.T) {
	for _, seed := range []int64{1, 2, 11, 41} {
		f := newFixture(t, seed, 3)
		f.clk.Sleep(time.Second)
		var victim topology.NodeID = -1
		for _, run := range f.runs {
			if u := run.Circuit.UnpinnedServices(); len(u) > 0 {
				victim = u[0].Node
				break
			}
		}
		f.env.SetBackgroundLoad(victim, 5.0)
		st, err := f.co.Sweep(nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.DataPlane == 0 {
			continue
		}
		for _, run := range f.runs {
			for _, m := range run.Migrations() {
				select {
				case <-m.Done():
				default:
					t.Fatalf("seed %d: Sweep returned with migration q%d/s%d still pending",
						seed, m.Query, m.Service)
				}
				if m.Aborted {
					t.Fatalf("seed %d: migration aborted during a plain sweep", seed)
				}
			}
		}
	}
}

// TestSharedInstanceMigrationInvariant drives the acceptance-criterion
// invariant end to end: a circuit reuses another's service on both
// planes, the shared instance migrates through the two-phase protocol,
// and afterwards the owner circuit, every consumer circuit, the
// registry entry, and the engine's routing all agree on the new host —
// no stale Node anywhere, with zero tuple loss.
func TestSharedInstanceMigrationInvariant(t *testing.T) {
	f := newFixture(t, 77, 1)
	owner := f.runs[0]
	ownerC := owner.Circuit

	// Locate the owner's registered root instance and its service.
	rootSig := ownerC.Root().Signature
	var inst *optimizer.ServiceInstance
	for _, i := range f.dep.Registry.Instances() {
		if i.Signature == rootSig {
			inst = i
		}
	}
	if inst == nil {
		t.Fatal("owner deployment registered no root instance")
	}
	ownerSvc := -1
	for i, s := range ownerC.Services {
		if !s.Reused && s.Plan != nil && s.Signature == rootSig {
			ownerSvc = i
		}
	}
	if ownerSvc < 0 {
		t.Fatal("no executing service for the root instance")
	}

	// Deploy a consumer circuit that reuses the instance, on both planes.
	b := &optimizer.Builder{Env: f.env}
	stubs := f.env.Topo.StubNodeIDs()
	cq := query.Query{ID: 50, Consumer: stubs[11], Streams: ownerC.Query.Streams}
	consC, err := b.Skeleton(cq, ownerC.Plan, func(n *query.PlanNode) *optimizer.ServiceInstance {
		if n.Signature() == inst.Signature {
			return inst
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.dep.Deploy(consC); err != nil {
		t.Fatal(err)
	}
	consRun, err := f.engine.Deploy(consC)
	if err != nil {
		t.Fatal(err)
	}
	consSvc := -1
	for i, s := range consC.Services {
		if s.Reused {
			consSvc = i
		}
	}
	f.clk.Sleep(2 * time.Second)

	// Move the shared instance through the adaptation layer.
	var target topology.NodeID = stubs[17]
	if target == inst.Node {
		target = stubs[16]
	}
	plan := optimizer.MigrationPlan{Moves: []optimizer.Migration{{
		Query: ownerC.Query.ID, Service: ownerSvc, Signature: rootSig,
		From: inst.Node, To: target, InRate: ownerC.Services[ownerSvc].InRate,
	}}}
	st, err := f.co.Execute(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Migrated != 1 || st.DataPlane != 1 {
		t.Fatalf("Execute stats = %+v, want 1 committed data-plane move", st)
	}

	// The invariant: one truth about where the instance lives.
	if inst.Node != target {
		t.Fatalf("instance on %d, want %d", inst.Node, target)
	}
	if got := ownerC.Services[ownerSvc].Node; got != target {
		t.Fatalf("owner circuit binds %d, want %d", got, target)
	}
	for i, s := range consC.Services {
		if s.Reused && s.Node != target {
			t.Fatalf("consumer circuit service %d still binds %d (stale), want %d", i, s.Node, target)
		}
	}
	if got := owner.Host(ownerSvc); got != target {
		t.Fatalf("engine executes owner service on %d, want %d", got, target)
	}
	if got := consRun.Host(consSvc); got != target {
		t.Fatalf("engine routes consumer's reused service to %d, want %d", got, target)
	}

	// And the dataflow survived it: quiesce, conserve, no loss.
	f.clk.Sleep(2 * time.Second)
	if consRun.SharedIn() == 0 {
		t.Fatal("consumer never received shared tuples")
	}
	if consRun.Measure().TuplesOut == 0 {
		t.Fatal("consumer sink delivered nothing")
	}
	requireNoLossCounters(t, f)
}
