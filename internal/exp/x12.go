package exp

import (
	"math/rand"
	"sort"
	"time"

	"github.com/hourglass/sbon/internal/adapt"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/stream"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
	"github.com/hourglass/sbon/internal/workload"
)

// X12Params configures the node-churn-during-execution scenario.
type X12Params struct {
	Seed int64
	// StubNodes is the per-stub-domain node count (default 12 → 592
	// nodes, the paper's scale).
	StubNodes int
	// Streams and Queries size the executing workload.
	Streams int
	Queries int
	// KillFraction of overlay nodes depart mid-run (default 0.05).
	KillFraction float64
	// WarmupSimSeconds runs the data plane before the churn event.
	WarmupSimSeconds float64
	// HeartbeatEvery paces liveness pings (0 disables).
	HeartbeatEvery time.Duration
	// TupleSizeKB sets producer tuple granularity.
	TupleSizeKB float64
	// Trace, when set, records the run's structured events (drain
	// migrations, adaptation rounds, sampled tuple hops).
	Trace *trace.Tracer
}

// DefaultX12Params returns the full-scale configuration.
func DefaultX12Params() X12Params {
	return X12Params{
		Seed:             20,
		StubNodes:        12,
		Streams:          12,
		Queries:          40,
		KillFraction:     0.05,
		WarmupSimSeconds: 5,
		HeartbeatEvery:   500 * time.Millisecond,
		TupleSizeKB:      4,
	}
}

// X12 is the node-churn scenario the deploy-once engine could never
// express: while circuits execute, 5% of the overlay's nodes announce
// departure; the adaptation layer drains every service off them through
// the live migration protocol (buffer → cutover → forward), the nodes
// die, and later re-join as migration targets for the next
// re-optimization sweep. The scenario measures data-plane settle time
// for both phases and proves zero tuple loss: no unrouted messages, no
// data message ever delivered to a dead node, and — after quiescing
// producers — every produced tuple accounted for at a consumer or
// inside a (counted) join/aggregate reduction.
func X12(p X12Params) (*Table, error) {
	if p.StubNodes <= 0 {
		p.StubNodes = 12
	}
	if p.Streams <= 0 {
		p.Streams = 12
	}
	if p.Queries <= 0 {
		p.Queries = 40
	}
	if p.KillFraction <= 0 {
		p.KillFraction = 0.05
	}
	if p.WarmupSimSeconds <= 0 {
		p.WarmupSimSeconds = 5
	}
	if p.TupleSizeKB <= 0 {
		p.TupleSizeKB = 4
	}
	wallStart := time.Now()

	topoCfg := topology.DefaultConfig()
	topoCfg.StubNodes = p.StubNodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed * 3))
	sCfg := workload.DefaultStreamConfig()
	sCfg.NumStreams = p.Streams
	stats, err := workload.GenerateStats(topo, sCfg, rng)
	if err != nil {
		return nil, err
	}
	qCfg := workload.DefaultQueryConfig()
	qCfg.NumQueries = p.Queries
	qCfg.StreamsPerQuery = [2]int{1, 2}
	qCfg.AggregateProb = 0
	qs, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
	if err != nil {
		return nil, err
	}
	envCfg := optimizer.DefaultEnvConfig(p.Seed)
	envCfg.UseDHT = false // oracle mapping: identical results, faster churn sweeps
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		return nil, err
	}

	results, err := optimizer.OptimizeBatch(env, qs, optimizer.BatchOptions{})
	if err != nil {
		return nil, err
	}

	clk := simtime.NewVirtual()
	defer clk.Drive()()
	p.Trace.Rebase(clk)
	net := overlay.NewNetwork(topo, overlay.Config{TimeScale: time.Millisecond, InboxSize: 8192, Clock: clk})
	net.SetTracer(p.Trace)
	net.Start()
	defer net.Stop()
	ecfg := stream.DefaultEngineConfig()
	ecfg.Seed = p.Seed
	ecfg.TupleSizeKB = p.TupleSizeKB
	ecfg.Keyspace = 250
	ecfg.Tracer = p.Trace
	engine := stream.NewEngine(net, topo, ecfg)
	defer engine.Close()

	dep := optimizer.NewDeployment(env, nil)
	truth := optimizer.TrueLatency{Topo: topo}
	runs := make([]*stream.Running, 0, len(results))
	for i := range results {
		c := results[i].Circuit
		if err := dep.Deploy(c); err != nil {
			return nil, err
		}
		run, err := engine.Deploy(c)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	var hb *overlay.Heartbeats
	if p.HeartbeatEvery > 0 {
		hb = net.StartHeartbeats(p.HeartbeatEvery, 0.05)
	}
	clk.Sleep(time.Duration(p.WarmupSimSeconds * float64(time.Second)))

	// Victim selection: KillFraction of all nodes, skipping any that pin
	// an endpoint (producers and consumers cannot leave losslessly —
	// "one cannot move mountains").
	pinned := map[topology.NodeID]bool{}
	for _, c := range dep.Circuits() {
		for _, s := range c.Services {
			if s.Pinned || s.Plan == nil {
				pinned[s.Node] = true
			}
		}
	}
	killRng := rand.New(rand.NewSource(p.Seed * 7))
	wanted := int(p.KillFraction * float64(topo.NumNodes()))
	victims := make([]topology.NodeID, 0, wanted)
	seen := map[topology.NodeID]bool{}
	// Half the churn budget hits operator-hosting nodes (a departure
	// that never touches a running service would make the drain a
	// no-op), the rest random idle nodes.
	hostSet := map[topology.NodeID]bool{}
	for _, c := range dep.Circuits() {
		for _, s := range c.Services {
			if s.Plan != nil && s.Plan.Kind != query.KindSource && !s.Pinned && !pinned[s.Node] {
				hostSet[s.Node] = true
			}
		}
	}
	opHosts := make([]topology.NodeID, 0, len(hostSet))
	for n := range hostSet {
		opHosts = append(opHosts, n)
	}
	sort.Slice(opHosts, func(i, j int) bool { return opHosts[i] < opHosts[j] })
	killRng.Shuffle(len(opHosts), func(i, j int) { opHosts[i], opHosts[j] = opHosts[j], opHosts[i] })
	fromHosts := wanted / 2
	if fromHosts < 1 {
		fromHosts = 1
	}
	for _, n := range opHosts {
		if len(victims) >= fromHosts {
			break
		}
		seen[n] = true
		victims = append(victims, n)
	}
	for len(victims) < wanted {
		n := topology.NodeID(killRng.Intn(topo.NumNodes()))
		if pinned[n] || seen[n] {
			continue
		}
		seen[n] = true
		victims = append(victims, n)
	}

	co := &adapt.Coordinator{
		Dep:     dep,
		Engine:  engine,
		Clock:   clk,
		Mapper:  placement.OracleMapper{Source: env},
		Exclude: seen,
		Tracer:  p.Trace,
	}
	usageBefore := dep.TotalUsage(truth)

	lossNow := func() int {
		return int(net.Metrics.Counter("msgs.unrouted").Value() +
			net.Metrics.Counter("msgs.down_dropped").Value())
	}

	// Phase 1: drain, then kill.
	drain, err := co.Evacuate(victims, nil)
	if err != nil {
		return nil, err
	}
	for _, v := range victims {
		net.SetNodeDown(v, true)
	}
	clk.Sleep(2 * time.Second) // run on the shrunk overlay
	drainLoss := lossNow()

	// Phase 2: the killed nodes re-join and a sweep may claim them.
	for _, v := range victims {
		net.SetNodeDown(v, false)
	}
	co.Exclude = nil
	// The rejoined nodes return idle while survivors carry extra load —
	// exactly the imbalance a sweep exploits.
	rejoin, err := co.Sweep(nil)
	if err != nil {
		return nil, err
	}
	clk.Sleep(2 * time.Second)

	// Quiesce and account for every tuple.
	for _, run := range runs {
		run.HaltProducers()
	}
	clk.Sleep(time.Second)
	var produced, delivered int
	for _, run := range runs {
		produced += run.TuplesProduced()
		delivered += run.Measure().TuplesOut
	}
	if hb != nil {
		hb.Stop()
	}
	usageAfter := dep.TotalUsage(truth)
	unrouted := int(net.Metrics.Counter("msgs.unrouted").Value())
	downDropped := int(net.Metrics.Counter("msgs.down_dropped").Value())
	hbDropped := int(net.Metrics.Counter("hb.down_dropped").Value())
	wall := time.Since(wallStart)

	t := NewTable("X12 — node churn during execution: drain, kill, re-join",
		"phase", "nodes", "migrations", "buffered", "forwarded", "settle sim-ms", "tuple loss")
	t.AddRow("drain+kill", len(victims), drain.Migrated, drain.Buffered, drain.Forwarded,
		net.SimMillis(drain.SettleDuration), drainLoss)
	t.AddRow("rejoin+sweep", len(victims), rejoin.Migrated, rejoin.Buffered, rejoin.Forwarded,
		net.SimMillis(rejoin.SettleDuration), unrouted+downDropped-drainLoss)
	t.AddNote("killed %.0f%% of %d nodes mid-execution; %d circuits kept running; produced %d tuples, delivered %d",
		p.KillFraction*100, topo.NumNodes(), len(runs), produced, delivered)
	t.AddNote("loss accounting: unrouted=%d, data-to-dead-node=%d (heartbeats to dead nodes: %d, counted separately)",
		unrouted, downDropped, hbDropped)
	t.AddNote("total network usage %.0f → %.0f KB·ms/s across the churn; wall %v",
		usageBefore, usageAfter, wall.Round(time.Millisecond))
	return t, nil
}
