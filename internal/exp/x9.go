package exp

import (
	"math/rand"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/placement"
)

// X9Params configures the plan-rewriting study.
type X9Params struct {
	Scale Scale
	Seeds int
}

// DefaultX9Params returns the full-scale configuration.
func DefaultX9Params() X9Params { return X9Params{Scale: Full, Seeds: 10} }

// X9 measures the paper's §3.3 "limited plan re-writing": circuits are
// first deployed by the two-step optimizer (which walks into the Figure
// 1 trap), then the re-optimizer's join-reordering sweeps run to a
// fixpoint. Reported: usage before rewriting, after, and the integrated
// optimizer's result as the reference — how much of the integration
// benefit can be recovered *online* by rewriting an already-running
// circuit.
func X9(p X9Params) (*Table, error) {
	if p.Seeds <= 0 {
		p.Seeds = 10
	}
	t := NewTable("X9 — online plan rewriting of running circuits (§3.3)",
		"seed", "usage two-step", "after rewriting", "integrated (reference)",
		"rewrites", "recovered %")

	var recovered []float64
	for seed := int64(1); seed <= int64(p.Seeds); seed++ {
		topo := genTopo(p.Scale, seed)
		rng := rand.New(rand.NewSource(seed * 77))
		stats, q, err := fig1Workload(topo, rng)
		if err != nil {
			return nil, err
		}
		envCfg := optimizer.DefaultEnvConfig(seed)
		envCfg.UseDHT = false
		env, err := optimizer.NewEnv(topo, stats, envCfg)
		if err != nil {
			return nil, err
		}
		truth := optimizer.TrueLatency{Topo: topo}
		mapper := placement.OracleMapper{Source: env}

		two, err := (&optimizer.TwoStep{Env: env, Mapper: mapper, Model: truth}).Optimize(q)
		if err != nil {
			return nil, err
		}
		integ, err := (&optimizer.Integrated{Env: env, Mapper: mapper, Model: truth}).Optimize(q)
		if err != nil {
			return nil, err
		}

		dep := optimizer.NewDeployment(env, nil)
		if err := dep.Deploy(two.Circuit); err != nil {
			return nil, err
		}
		before := dep.TotalUsage(truth)

		ro := optimizer.NewReoptimizer(dep)
		ro.Mapper = mapper
		ro.Model = truth
		rewrites := 0
		for sweep := 0; sweep < 10; sweep++ {
			st, err := ro.RewriteStep()
			if err != nil {
				return nil, err
			}
			rewrites += st.Rewrites
			if st.Rewrites == 0 {
				break
			}
		}
		after := dep.TotalUsage(truth)
		ui := integ.Circuit.NetworkUsage(truth)

		rec := 100.0
		if before-ui > 1e-9 {
			rec = 100 * (before - after) / (before - ui)
		}
		recovered = append(recovered, rec)
		t.AddRow(seed, before, after, ui, rewrites, rec)
	}
	t.AddNote("mean integration benefit recovered online = %.1f%%", meanOf(recovered))
	t.AddNote("expected shape: rewriting recovers most of the two-step/integrated gap without re-planning from scratch — the §3.3 claim that long-running queries amortize re-optimization")
	return t, nil
}
