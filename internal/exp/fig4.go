package exp

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/workload"
)

// Fig4Params configures the Figure 4 reproduction.
type Fig4Params struct {
	Scale Scale
	Seed  int64
	// Background is the number of circuits deployed before probing.
	Background int
	// Probes is the number of new queries optimized at each radius.
	Probes int
	// Radii are the pruning radii r to sweep (cost-space units ≈ ms);
	// +Inf means unpruned full multi-query optimization.
	Radii []float64
}

// DefaultFig4Params returns the full-scale configuration.
func DefaultFig4Params() Fig4Params {
	return Fig4Params{
		Scale:      Full,
		Seed:       4,
		Background: 30,
		Probes:     15,
		Radii:      []float64{0, 10, 25, 50, 100, math.Inf(1)},
	}
}

// Fig4 reproduces Figure 4: multi-query optimization pruned to a radius
// r in the cost space. A background population of circuits is deployed
// (template-skewed, so identical sub-plans exist); then new queries are
// optimized with varying r. Reported per radius: how many registered
// service instances the optimizer had to examine (its work — the
// quantity pruning bounds), how often it found a reusable service, and
// the marginal network usage of the circuits it built.
func Fig4(p Fig4Params) (*Table, error) {
	if p.Background <= 0 {
		p.Background = 30
	}
	if p.Probes <= 0 {
		p.Probes = 15
	}
	if len(p.Radii) == 0 {
		p.Radii = DefaultFig4Params().Radii
	}
	topo := genTopo(p.Scale, p.Seed)
	rng := rand.New(rand.NewSource(p.Seed * 13))

	streamCfg := workload.DefaultStreamConfig()
	streamCfg.Placement = workload.Clustered
	if p.Scale == Small {
		streamCfg.NumStreams = 8
	}
	stats, err := workload.GenerateStats(topo, streamCfg, rng)
	if err != nil {
		return nil, err
	}
	envCfg := optimizer.DefaultEnvConfig(p.Seed)
	envCfg.UseDHT = false // oracle mapping keeps the sweep deterministic and fast
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		return nil, err
	}
	mapper := placement.OracleMapper{Source: env}
	truth := optimizer.TrueLatency{Topo: topo}

	// Background and probe queries are drawn in one batch so they share
	// the same Zipf-skewed template pool — the sharing §3.4 exploits.
	qCfg := workload.DefaultQueryConfig()
	qCfg.NumQueries = p.Background + p.Probes
	qCfg.Templates = 6
	qCfg.TemplateSkew = 1.4
	qCfg.FilterProb = 0 // identical sub-plans share more readily
	qCfg.AggregateProb = 0
	all, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
	if err != nil {
		return nil, err
	}
	background, probes := all[:p.Background], all[p.Background:]

	reg := optimizer.NewRegistry()
	dep := optimizer.NewDeployment(env, reg)
	integ := &optimizer.Integrated{Env: env, Mapper: mapper}
	for _, q := range background {
		res, err := integ.Optimize(q)
		if err != nil {
			return nil, err
		}
		if err := dep.Deploy(res.Circuit); err != nil {
			return nil, err
		}
	}

	t := NewTable(fmt.Sprintf("Figure 4 — radius-pruned multi-query optimization (%d background circuits, %d registered services)",
		dep.NumDeployed(), reg.Len()),
		"radius r", "instances examined (mean)", "probes reusing >=1 service %",
		"reused services (mean)", "marginal usage (mean)", "usage vs r=0 %")

	var baseUsage float64
	for _, r := range p.Radii {
		// Selection uses the true-latency model so the radius sweep
		// isolates pruning behaviour from coordinate-estimation error
		// (with an estimator model, a reuse candidate picked as cheaper
		// could measure slightly worse).
		mq := &optimizer.MultiQuery{Env: env, Registry: reg, Radius: r, Mapper: mapper, Model: truth}
		var examined, reusedSvcs, usage float64
		reusingProbes := 0
		for _, q := range probes {
			res, err := mq.Optimize(q)
			if err != nil {
				return nil, err
			}
			examined += float64(res.InstancesExamined)
			reusedSvcs += float64(res.ReusedServices)
			if res.ReusedServices > 0 {
				reusingProbes++
			}
			usage += res.Circuit.NetworkUsage(truth)
		}
		examined /= float64(len(probes))
		reusedSvcs /= float64(len(probes))
		usage /= float64(len(probes))
		if r == 0 {
			baseUsage = usage
		}
		rel := 100.0
		if baseUsage > 0 {
			rel = 100 * usage / baseUsage
		}
		label := fmt.Sprintf("%.0f", r)
		if math.IsInf(r, 1) {
			label = "inf (full MQO)"
		}
		t.AddRow(label, examined, 100*float64(reusingProbes)/float64(len(probes)), reusedSvcs, usage, rel)
	}
	t.AddNote("expected shape: examined instances grow with r (optimizer work); reuse and usage savings saturate at moderate r — a small region already captures most of full MQO's benefit (§3.4)")
	return t, nil
}
