package exp

import (
	"math/rand"
	"time"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/stream"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/workload"
)

// X11Params configures the large-scale virtual-time scenario.
type X11Params struct {
	Seed int64
	// StubNodes is the per-stub-domain node count; the default 21 gives
	// a 1024-node transit-stub topology.
	StubNodes int
	// Streams is the published stream population.
	Streams int
	// Queries is the number of concurrently executing circuits.
	Queries int
	// SimSeconds is the measurement window in simulated seconds.
	SimSeconds float64
	// WarmupSimSeconds runs the data plane before measurement starts so
	// join windows fill (default 5).
	WarmupSimSeconds float64
	// HeartbeatEvery is the per-node liveness ping period in simulated
	// milliseconds of clock time (0 disables heartbeats).
	HeartbeatEvery time.Duration
	// TupleSizeKB sets the producer tuple size; larger tuples mean
	// fewer events for the same data rates.
	TupleSizeKB float64
}

// DefaultX11Params returns the full-scale configuration: 1024 overlay
// nodes and 200 concurrent queries — a scenario only feasible under
// virtual time (the wall-clock engine would need minutes of real time
// and give non-reproducible measurements).
func DefaultX11Params() X11Params {
	return X11Params{
		Seed:             19,
		StubNodes:        21,
		Streams:          16,
		Queries:          200,
		SimSeconds:       3,
		WarmupSimSeconds: 5,
		HeartbeatEvery:   500 * time.Millisecond,
		TupleSizeKB:      4,
	}
}

// X11 is the thousand-node virtual-time scenario: a ≥1000-node overlay
// executes ≥200 optimized circuits simultaneously on the discrete-event
// engine, with background heartbeat traffic, and the aggregate measured
// data plane is validated against the analytic model. The entire run —
// hundreds of simulated circuit-seconds, hundreds of thousands of
// delivery events — completes in seconds of wall time and is
// bit-reproducible for a fixed seed.
func X11(p X11Params) (*Table, error) {
	if p.StubNodes <= 0 {
		p.StubNodes = 21
	}
	if p.Streams <= 0 {
		p.Streams = 16
	}
	if p.Queries <= 0 {
		p.Queries = 200
	}
	if p.SimSeconds <= 0 {
		p.SimSeconds = 3
	}
	if p.WarmupSimSeconds <= 0 {
		p.WarmupSimSeconds = 5
	}
	if p.TupleSizeKB <= 0 {
		p.TupleSizeKB = 4
	}
	wallStart := time.Now()

	topoCfg := topology.DefaultConfig()
	topoCfg.StubNodes = p.StubNodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed * 3))
	sCfg := workload.DefaultStreamConfig()
	sCfg.NumStreams = p.Streams
	stats, err := workload.GenerateStats(topo, sCfg, rng)
	if err != nil {
		return nil, err
	}
	qCfg := workload.DefaultQueryConfig()
	qCfg.NumQueries = p.Queries
	// Relays, filters, and 2-way joins: operators whose measured rates
	// the model predicts tightly, so the aggregate ratio is a meaningful
	// validation signal at scale (deeper trees are mostly window-fill
	// transient over short windows).
	qCfg.StreamsPerQuery = [2]int{1, 2}
	qCfg.AggregateProb = 0
	qs, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
	if err != nil {
		return nil, err
	}
	envCfg := optimizer.DefaultEnvConfig(p.Seed)
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		return nil, err
	}

	// Optimize the whole population concurrently over one frozen
	// snapshot, then execute every circuit at once under virtual time.
	results, err := optimizer.OptimizeBatch(env, qs, optimizer.BatchOptions{})
	if err != nil {
		return nil, err
	}

	clk := simtime.NewVirtual()
	defer clk.Drive()()
	net := overlay.NewNetwork(topo, overlay.Config{TimeScale: time.Millisecond, InboxSize: 8192, Clock: clk})
	net.Start()
	defer net.Stop()
	ecfg := stream.DefaultEngineConfig()
	ecfg.Seed = p.Seed
	ecfg.TupleSizeKB = p.TupleSizeKB
	// A smaller key domain shrinks join windows proportionally, so they
	// fill within the warm-up phase at these tuple granularities.
	ecfg.Keyspace = 250
	engine := stream.NewEngine(net, topo, ecfg)
	defer engine.Close()

	truth := optimizer.TrueLatency{Topo: topo}
	var analyticUsage, analyticRate float64
	runs := make([]*stream.Running, 0, len(results))
	for i := range results {
		c := results[i].Circuit
		run, err := engine.Deploy(c)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
		analyticUsage += c.NetworkUsage(truth)
		analyticRate += c.Plan.OutRate
	}
	var hb *overlay.Heartbeats
	if p.HeartbeatEvery > 0 {
		hb = net.StartHeartbeats(p.HeartbeatEvery, 0.05)
	}

	// Warm up (join windows fill), snapshot, run the measurement window,
	// and report steady-state deltas.
	clk.Sleep(time.Duration(p.WarmupSimSeconds * float64(time.Second)))
	before := make([]stream.Measurement, len(runs))
	for i, run := range runs {
		before[i] = run.Measure()
	}
	clk.Sleep(time.Duration(p.SimSeconds * float64(time.Second)))

	var measuredUsage, measuredRate float64
	tuples := 0
	for i, run := range runs {
		m0, m1 := before[i], run.Measure()
		dt := m1.SimSeconds - m0.SimSeconds
		measuredUsage += (m1.NetworkUsage*m1.SimSeconds - m0.NetworkUsage*m0.SimSeconds) / dt
		measuredRate += (m1.OutRateKBs*m1.SimSeconds - m0.OutRateKBs*m0.SimSeconds) / dt
		tuples += m1.TuplesOut - m0.TuplesOut
	}
	if hb != nil {
		hb.Stop()
	}
	msgs := net.Metrics.Counter("msgs.sent").Value()
	beats := net.Metrics.Counter("hb.recv").Value()
	wall := time.Since(wallStart)

	t := NewTable("X11 — thousand-node scenario under virtual time",
		"nodes", "circuits", "sim seconds", "tuples", "messages", "heartbeats",
		"rate ratio", "usage ratio", "wall ms")
	t.AddRow(topo.NumNodes(), len(runs), p.SimSeconds, tuples, int(msgs), int(beats),
		measuredRate/analyticRate, measuredUsage/analyticUsage,
		float64(wall.Microseconds())/1000)
	t.AddNote("aggregate analytic usage %.0f vs measured %.0f KB·ms/s over %d concurrent circuits",
		analyticUsage, measuredUsage, len(runs))
	t.AddNote("expected shape: rate/usage ratios ≈ 1 (joins add noise); wall time orders of magnitude below the %v of simulated circuit-time executed",
		time.Duration(float64(len(runs))*p.SimSeconds*float64(time.Second)))
	return t, nil
}
