package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Experiment is one runnable figure/ablation.
type Experiment struct {
	// ID is the short name used by -run flags ("fig1", "x3", ...).
	ID string
	// Run executes the experiment at the given scale.
	Run func(scale Scale) (*Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig1", func(s Scale) (*Table, error) { p := DefaultFig1Params(); p.Scale = s; return Fig1(p) }},
		{"fig2", func(s Scale) (*Table, error) { p := DefaultFig2Params(); p.Scale = s; return Fig2(p) }},
		{"fig3", func(s Scale) (*Table, error) { p := DefaultFig3Params(); p.Scale = s; return Fig3(p) }},
		{"fig4", func(s Scale) (*Table, error) { p := DefaultFig4Params(); p.Scale = s; return Fig4(p) }},
		{"x1", func(s Scale) (*Table, error) { p := DefaultX1Params(); p.Scale = s; return X1(p) }},
		{"x2", func(s Scale) (*Table, error) { p := DefaultX2Params(); p.Scale = s; return X2(p) }},
		{"x3", func(s Scale) (*Table, error) { p := DefaultX3Params(); p.Scale = s; return X3(p) }},
		{"x4", func(s Scale) (*Table, error) { p := DefaultX4Params(); p.Scale = s; return X4(p) }},
		{"x5", func(s Scale) (*Table, error) { return X5(DefaultX5Params()) }},
		{"x6", func(s Scale) (*Table, error) {
			p := DefaultX6Params()
			if s == Small {
				p.StubSizes = []int{1, 3}
			}
			return X6(p)
		}},
		{"x7", func(s Scale) (*Table, error) { p := DefaultX7Params(); p.Scale = s; return X7(p) }},
		{"x8", func(s Scale) (*Table, error) {
			p := DefaultX8Params()
			if s == Small {
				p.RunFor = 700 * time.Millisecond
			}
			return X8(p)
		}},
		{"x11", func(s Scale) (*Table, error) {
			p := DefaultX11Params()
			if s == Small {
				p.StubNodes = 5 // 256 nodes
				p.Queries = 30
				p.SimSeconds = 2
			}
			return X11(p)
		}},
		{"x12", func(s Scale) (*Table, error) {
			p := DefaultX12Params()
			if s == Small {
				p.StubNodes = 5 // 256 nodes
				p.Queries = 12
				p.WarmupSimSeconds = 2
			}
			return X12(p)
		}},
		{"x13", func(s Scale) (*Table, error) {
			p := DefaultX13Params()
			if s == Small {
				p.StubNodes = 5 // 256 nodes
				p.Queries = 30
				p.Budget = 6
				p.IntervalSimSeconds = 1
				p.WarmupSimSeconds = 2
			}
			return X13(p)
		}},
		{"x14", func(s Scale) (*Table, error) {
			p := DefaultX14Params()
			if s == Small {
				p.StubNodes = 5 // 256 nodes
				p.Groups = 8
				p.PerGroup = 3
				p.MeasureSimSeconds = 2
			}
			return X14(p)
		}},
		{"x15", func(s Scale) (*Table, error) {
			p := DefaultX15Params()
			if s == Small {
				p.StubNodes = 5 // 256 nodes
				p.Queries = 40
			}
			return X15(p)
		}},
		{"x16", func(s Scale) (*Table, error) {
			p := DefaultX16Params()
			if s == Small {
				p.StubNodes = 5 // 256 nodes
				p.Queries = 30
				p.WarmupSimSeconds = 2
				p.CrashSpreadSimSeconds = 2
				p.RunSimSeconds = 6
			}
			return X16(p)
		}},
		{"x17", func(s Scale) (*Table, error) {
			p := DefaultX17Params()
			if s == Small {
				p.StubsPerTransit = 8
				p.StubNodes = 8 // 1040 nodes
				p.Queries = 2000
				p.EngineCircuits = 64
				p.TickerWarmRounds = 20
				p.Rounds = 2
			}
			return X17(p)
		}},
		{"x18", func(s Scale) (*Table, error) {
			p := DefaultX18Params()
			if s == Small {
				p.StubsPerTransit = 8
				p.StubNodes = 8 // 4160 nodes
				p.Streams = 32
				p.Queries = 2000
				p.EngineCircuits = 64
				p.TickerWarmRounds = 10
			}
			return X18(p)
		}},
		{"x9", func(s Scale) (*Table, error) {
			p := DefaultX9Params()
			p.Scale = s
			if s == Small {
				p.Seeds = 4
			}
			return X9(p)
		}},
		{"x10", func(s Scale) (*Table, error) {
			p := DefaultX10Params()
			p.Scale = s
			if s == Small {
				p.Seeds = 3
			}
			return X10(p)
		}},
	}
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunOptions controls Run/RunAll output.
type RunOptions struct {
	Scale Scale
	// OutDir, when non-empty, receives one CSV per experiment (and the
	// fig2 point cloud).
	OutDir string
}

// Run executes the selected experiments (all when ids is empty), printing
// tables to w and optionally writing CSVs.
func Run(w io.Writer, ids []string, opts RunOptions) error {
	exps := All()
	if len(ids) > 0 {
		exps = exps[:0]
		for _, id := range ids {
			e, ok := Lookup(strings.ToLower(strings.TrimSpace(id)))
			if !ok {
				return fmt.Errorf("exp: unknown experiment %q", id)
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		start := time.Now()
		var table *Table
		var err error
		if e.ID == "fig2" && opts.OutDir != "" {
			// fig2 additionally dumps its point cloud.
			f, ferr := os.Create(filepath.Join(opts.OutDir, "fig2_points.csv"))
			if ferr != nil {
				return ferr
			}
			p := DefaultFig2Params()
			p.Scale = opts.Scale
			p.PointsCSV = f
			table, err = Fig2(p)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		} else {
			table, err = e.Run(opts.Scale)
		}
		if err != nil {
			return fmt.Errorf("exp: %s: %w", e.ID, err)
		}
		table.AddNote("experiment %s completed in %v", e.ID, time.Since(start).Round(time.Millisecond))
		table.Fprint(w)
		if opts.OutDir != "" {
			f, err := os.Create(filepath.Join(opts.OutDir, e.ID+".csv"))
			if err != nil {
				return err
			}
			if err := table.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
