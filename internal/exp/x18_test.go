package exp

import (
	"os"
	"testing"
)

// TestX18FullScale runs the headline configuration once: ~100k nodes,
// 500k queries, 64 data-plane shards. Rerun determinism for the X18
// structure is pinned at CI scale by TestX18Deterministic; this test
// asserts the full scale point completes and actually loaded the
// kernel. It takes ~7 minutes of single-core CPU, which would push the
// exp package past the default go-test timeout alongside the X17 full
// run, so it is opt-in: set SBON_FULLSCALE=1 to run it.
func TestX18FullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node scenario skipped in -short")
	}
	if os.Getenv("SBON_FULLSCALE") == "" {
		t.Skip("~7 CPU-minutes; set SBON_FULLSCALE=1 to run")
	}
	tb, err := X18(DefaultX18Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("expected 2 adaptation rounds, got %d rows", len(tb.Rows))
	}
	// 100k nodes with heartbeats on: at least one pending timer per node.
	if pending := cell(t, tb, 0, 8); pending < 100_000 {
		t.Fatalf("pending events %v, want >= 100000 at full scale", pending)
	}
}
