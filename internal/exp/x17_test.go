package exp

import (
	"testing"
)

// smallX17 shrinks the scenario to ~1040 nodes / 2000 queries so shape
// and determinism run in unit-test time; the full-scale configuration
// is exercised by TestX17FullScale and BenchmarkX17.
func smallX17() X17Params {
	p := DefaultX17Params()
	p.StubsPerTransit = 8
	p.StubNodes = 8 // 16 + 16·8·8 = 1040 nodes
	p.Queries = 2000
	p.EngineCircuits = 64
	p.TickerWarmRounds = 20
	p.Rounds = 2
	return p
}

func TestX17SmallShape(t *testing.T) {
	tb, err := X17(smallX17())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("expected 2 adaptation rounds, got %d rows", len(tb.Rows))
	}
	for i := range tb.Rows {
		if synced := cell(t, tb, i, 1); synced <= 0 {
			t.Fatalf("round %d synced no coordinates — ticker not feeding the env", i+1)
		}
		if staleness := cell(t, tb, i, 2); staleness <= 0 {
			t.Fatalf("round %d staleness %v, want > 0 (gossip keeps moving coordinates)", i+1, staleness)
		}
		if pending := cell(t, tb, i, 8); pending <= 0 {
			t.Fatalf("round %d pending events %v, want > 0 (heartbeats and producers live)", i+1, pending)
		}
	}
}

func TestX17Deterministic(t *testing.T) {
	run := func() [][]string {
		tb, err := X17(smallX17())
		if err != nil {
			t.Fatal(err)
		}
		return tb.Rows
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("same-seed X17 row counts diverged: %d vs %d", len(a), len(b))
	}
	for r := range a {
		for c := range a[r] {
			if a[r][c] != b[r][c] {
				t.Fatalf("same-seed X17 diverged at (%d,%d): %q vs %q", r, c, a[r][c], b[r][c])
			}
		}
	}
}

// TestX17FullScale runs the acceptance-criterion configuration: 16400
// nodes, 100k queries through 16 shards, full-population heartbeats
// under virtual time — a scenario that requires the sparse latency
// decomposition and is infeasible on the binary-heap scheduler within
// any reasonable budget.
func TestX17FullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("16k-node scenario skipped in -short")
	}
	tb, err := X17(DefaultX17Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("expected 3 adaptation rounds, got %d rows", len(tb.Rows))
	}
	// The event kernel must actually have been under load: at 16400
	// nodes with heartbeats on, tens of thousands of timers pend.
	if pending := cell(t, tb, 0, 8); pending < 16000 {
		t.Fatalf("pending events %v, want >= 16000 at full scale", pending)
	}
	for i := range tb.Rows {
		if synced := cell(t, tb, i, 1); synced <= 0 {
			t.Fatalf("round %d synced no coordinates", i+1)
		}
	}
}
