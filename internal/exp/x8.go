package exp

import (
	"math/rand"
	"time"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/stream"
	"github.com/hourglass/sbon/internal/topology"
)

// x8WallTimeScale is the wall-clock engine's time scale; RunFor windows
// are expressed at this scale so the virtual engine can reproduce the
// same simulated window exactly.
const x8WallTimeScale = 10 * time.Microsecond

// X8Params configures the data-plane validation run.
type X8Params struct {
	Seed int64
	// RunFor is the measurement window per circuit, expressed as wall
	// time at the wall-clock engine's 10µs/sim-ms scale (so 2s ≡ 200
	// simulated seconds). The virtual engine runs the same simulated
	// window instantly.
	RunFor time.Duration
	// Virtual executes the circuits on the deterministic virtual-time
	// engine instead of the wall-clock goroutine runtime.
	Virtual bool
}

// DefaultX8Params returns the full configuration: virtual time, so the
// artifact regenerates in milliseconds and is bit-reproducible.
func DefaultX8Params() X8Params { return X8Params{Seed: 18, RunFor: 2 * time.Second, Virtual: true} }

// X8 validates the analytic cost model against the executing data plane:
// circuits are optimized, deployed on the overlay runtime, and run with
// real tuples; measured delivery rate and network usage are compared to
// the model's predictions. This closes the loop between the optimizer's
// arithmetic and an actual dataflow. With Virtual set the dataflow runs
// on the discrete-event clock — same simulated window, milliseconds of
// wall time, bit-identical tables for a fixed seed.
func X8(p X8Params) (*Table, error) {
	if p.RunFor <= 0 {
		p.RunFor = 2 * time.Second
	}
	// The wall-clock engine runs in real time, so use a small topology
	// regardless of scale.
	cfg := topology.Config{
		TransitDomains:      2,
		TransitNodes:        2,
		StubsPerTransit:     1,
		StubNodes:           4,
		IntraStubLatency:    [2]float64{1, 4},
		StubUplinkLatency:   [2]float64{2, 8},
		IntraTransitLatency: [2]float64{5, 15},
		InterTransitLatency: [2]float64{20, 50},
		ExtraStubEdgeProb:   0.2,
	}
	topo := topology.MustGenerate(cfg, rand.New(rand.NewSource(p.Seed)))
	stats, err := query.NewCatalog(0.8)
	if err != nil {
		return nil, err
	}
	stubs := topo.StubNodeIDs()
	for i := 0; i < 2; i++ {
		if err := stats.AddStream(query.StreamID(i), stubs[i*5], 50); err != nil {
			return nil, err
		}
	}
	envCfg := optimizer.DefaultEnvConfig(p.Seed)
	envCfg.UseDHT = false
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		return nil, err
	}

	netCfg := overlay.Config{TimeScale: x8WallTimeScale, InboxSize: 8192}
	var clk simtime.Clock = simtime.Real()
	if p.Virtual {
		vclk := simtime.NewVirtual()
		defer vclk.Drive()()
		clk = vclk
		netCfg = overlay.Config{TimeScale: time.Millisecond, InboxSize: 8192, Clock: vclk}
	}
	// The same simulated window on either clock.
	simMs := float64(p.RunFor) / float64(x8WallTimeScale)
	window := time.Duration(simMs * float64(netCfg.TimeScale))

	net := overlay.NewNetwork(topo, netCfg)
	net.Start()
	defer net.Stop()
	engine := stream.NewEngine(net, topo, stream.DefaultEngineConfig())
	defer engine.Close()

	cases := []struct {
		name string
		q    query.Query
	}{
		{"relay (1 stream)", query.Query{ID: 1, Consumer: stubs[10], Streams: []query.StreamID{0}}},
		{"filter 0.5", query.Query{ID: 2, Consumer: stubs[11], Streams: []query.StreamID{0},
			FilterSel: map[query.StreamID]float64{0: 0.5}}},
		{"2-way join", query.Query{ID: 3, Consumer: topo.TransitNodeIDs()[0], Streams: []query.StreamID{0, 1}}},
	}
	truth := optimizer.TrueLatency{Topo: topo}
	t := NewTable("X8 — data-plane validation: analytic model vs executing circuits",
		"circuit", "analytic usage", "measured usage", "usage ratio",
		"analytic rate KB/s", "measured rate KB/s", "rate ratio")
	for _, tc := range cases {
		res, err := optimizer.NewIntegrated(env).Optimize(tc.q)
		if err != nil {
			return nil, err
		}
		analyticUsage := res.Circuit.NetworkUsage(truth)
		analyticRate := res.Circuit.Plan.OutRate
		run, err := engine.Deploy(res.Circuit)
		if err != nil {
			return nil, err
		}
		clk.Sleep(window)
		m := run.Measure()
		if err := engine.Stop(tc.q.ID); err != nil {
			return nil, err
		}
		t.AddRow(tc.name, analyticUsage, m.NetworkUsage, m.NetworkUsage/analyticUsage,
			analyticRate, m.OutRateKBs, m.OutRateKBs/analyticRate)
	}
	t.AddNote("expected shape: ratios ≈ 1 for relay/filter; join rate noisier (window fill-up, key collisions) but same order of magnitude")
	if p.Virtual {
		t.AddNote("engine: virtual time (deterministic; %v simulated per circuit)", time.Duration(simMs)*time.Millisecond)
	} else {
		t.AddNote("engine: wall clock (%v per circuit at %v/sim-ms)", p.RunFor, x8WallTimeScale)
	}
	return t, nil
}
