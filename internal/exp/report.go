// Package exp contains the experiment harness that regenerates every
// figure of the paper (F1–F4) plus the ablations listed in DESIGN.md
// (X1–X8). Each experiment is a pure function from parameters to a
// Table; cmd/sbon-exp prints them and the root benchmarks time them.
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of experiment results.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are free-form lines printed under the table (e.g. summary
	// statistics or expected shapes).
	Notes []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row, formatting each value: floats as %.4g, everything
// else via %v.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table (header + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("exp: write csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("exp: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
