package exp

import (
	"math"
	"math/rand"
	"time"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/dht"
	"github.com/hourglass/sbon/internal/hilbert"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/plan"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
	"github.com/hourglass/sbon/internal/workload"
)

// X1Params configures the placement-strategy comparison.
type X1Params struct {
	Scale       Scale
	Seed        int64
	QueryCounts []int
}

// DefaultX1Params returns the full-scale configuration.
func DefaultX1Params() X1Params {
	return X1Params{Scale: Full, Seed: 11, QueryCounts: []int{5, 10, 20}}
}

// X1 compares placement strategies for the same plans: the paper's
// relaxation placement against random, at-consumer, and at-producer
// baselines, reporting total network usage as the query population grows.
func X1(p X1Params) (*Table, error) {
	if len(p.QueryCounts) == 0 {
		p.QueryCounts = []int{5, 10, 20}
	}
	t := NewTable("X1 — placement strategies: total network usage (KB·ms/s)",
		"queries", "relaxation", "random", "consumer", "producer", "random/relax", "consumer/relax", "producer/relax")

	for _, count := range p.QueryCounts {
		usages := make(map[string]float64, 4)
		strategies := []optimizer.PlacementStrategy{
			optimizer.RelaxationStrategy{},
			optimizer.RandomStrategy{},
			optimizer.ConsumerStrategy{},
			optimizer.ProducerStrategy{},
		}
		for _, strat := range strategies {
			// Fresh, identically seeded world per strategy so the
			// workloads and topologies coincide exactly.
			topo := genTopo(p.Scale, p.Seed)
			rng := rand.New(rand.NewSource(p.Seed * 7))
			stats, err := workload.GenerateStats(topo, workload.DefaultStreamConfig(), rng)
			if err != nil {
				return nil, err
			}
			qCfg := workload.DefaultQueryConfig()
			qCfg.NumQueries = count
			qCfg.Templates = 0
			queries, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
			if err != nil {
				return nil, err
			}
			envCfg := optimizer.DefaultEnvConfig(p.Seed)
			envCfg.UseDHT = false
			env, err := optimizer.NewEnv(topo, stats, envCfg)
			if err != nil {
				return nil, err
			}
			if rs, ok := strat.(optimizer.RelaxationStrategy); ok {
				rs.Mapper = placement.OracleMapper{Source: env}
				strat = rs
			}
			enum := plan.NewEnumerator(stats)
			truth := optimizer.TrueLatency{Topo: topo}
			dep := optimizer.NewDeployment(env, nil)
			for _, q := range queries {
				best, err := enum.Best(q)
				if err != nil {
					return nil, err
				}
				c, err := strat.PlaceCircuit(env, q, best)
				if err != nil {
					return nil, err
				}
				if err := dep.Deploy(c); err != nil {
					return nil, err
				}
			}
			usages[strat.Name()] = dep.TotalUsage(truth)
		}
		rl := usages["relaxation"]
		t.AddRow(count, rl, usages["random"], usages["consumer"], usages["producer"],
			usages["random"]/rl, usages["consumer"]/rl, usages["producer"]/rl)
	}
	t.AddNote("expected shape: relaxation placement clearly below random and at least competitive with the endpoint heuristics at every population size (companion-TR result)")
	return t, nil
}

// X2Params configures the Vivaldi convergence sweep.
type X2Params struct {
	Scale  Scale
	Seed   int64
	Rounds []int
}

// DefaultX2Params returns the full-scale configuration.
func DefaultX2Params() X2Params {
	return X2Params{Scale: Full, Seed: 12, Rounds: []int{1, 2, 5, 10, 20, 40, 80}}
}

// X2 measures the Vivaldi embedding's error against update rounds — the
// convergence behaviour the cost space's vector dimensions depend on.
func X2(p X2Params) (*Table, error) {
	if len(p.Rounds) == 0 {
		p.Rounds = DefaultX2Params().Rounds
	}
	topo := genTopo(p.Scale, p.Seed)
	m := topo.LatencyMatrix()
	t := NewTable("X2 — Vivaldi convergence (2-D, transit-stub latency matrix)",
		"rounds", "median rel err", "p90 rel err", "mean rel err")
	for _, rounds := range p.Rounds {
		emb, err := vivaldi.EmbedMatrix(m, vivaldi.DefaultConfig(), rounds, 4, rand.New(rand.NewSource(p.Seed)))
		if err != nil {
			return nil, err
		}
		q := emb.Evaluate(func(i, j int) float64 { return m[i][j] }, 3000, rand.New(rand.NewSource(p.Seed+1)))
		t.AddRow(rounds, q.MedianRelErr, q.P90RelErr, q.MeanRelErr)
	}
	t.AddNote("expected shape: error falls steeply over the first tens of rounds and flattens — coordinates are usable long before full convergence")
	return t, nil
}

// X3Params configures the mapping-error study.
type X3Params struct {
	Scale   Scale
	Seed    int64
	Dims    []int
	Targets int
}

// DefaultX3Params returns the full-scale configuration.
func DefaultX3Params() X3Params {
	return X3Params{Scale: Full, Seed: 13, Dims: []int{2, 3, 4, 5}, Targets: 100}
}

// X3 measures Hilbert-DHT mapping error against cost-space
// dimensionality: more vector dimensions dilute the curve's locality
// (fixed 64-bit keys buy fewer bits per dimension), so the walk must
// inspect more candidates for the same accuracy.
func X3(p X3Params) (*Table, error) {
	if len(p.Dims) == 0 {
		p.Dims = []int{2, 3, 4, 5}
	}
	if p.Targets <= 0 {
		p.Targets = 100
	}
	topo := genTopo(p.Scale, p.Seed)
	m := topo.LatencyMatrix()
	t := NewTable("X3 — Hilbert-DHT mapping error vs cost-space dimensionality",
		"vector dims", "bits/dim", "mean err ratio (dht/oracle)", "p95 err ratio", "mean lookup hops")
	for _, d := range p.Dims {
		ratioHist, hopsHist, bits, err := x3ForDims(topo, m, d, p.Seed, p.Targets)
		if err != nil {
			return nil, err
		}
		t.AddRow(d, bits, ratioHist.Mean(), ratioHist.Quantile(0.95), hopsHist.Mean())
	}
	t.AddNote("expected shape: error ratio stays close to 1 in low dimensions and degrades gracefully as bits/dim shrink (paper: error magnitude depends on the dimensionality of the cost space)")
	return t, nil
}

func x3ForDims(topo *topology.Topology, m [][]float64, dims int, seed int64, targets int) (*histWrap, *histWrap, uint, error) {
	rng := rand.New(rand.NewSource(seed * int64(dims+1)))
	vcfg := vivaldi.DefaultConfig()
	vcfg.Dims = dims
	emb, err := vivaldi.EmbedMatrix(m, vcfg, 30, 4, rng)
	if err != nil {
		return nil, nil, 0, err
	}
	builder := spaceBuilder{dims: dims}
	space := builder.build()
	env, err := newAdhocCatalog(topo, space, emb.Coords, rng)
	if err != nil {
		return nil, nil, 0, err
	}
	mapper := placement.DHTMapper{Catalog: env.catalog, Candidates: 8, MaxScan: 48}
	oracle := placement.OracleMapper{Source: env}

	ratios := &histWrap{}
	hops := &histWrap{}
	n := topo.NumNodes()
	for i := 0; i < targets; i++ {
		anchor := emb.Coords[rng.Intn(n)]
		target := make(vivaldi.Coord, dims)
		for k := range target {
			target[k] = anchor[k] + rng.NormFloat64()*3
		}
		dn, stats, err := mapper.MapCoord(topology.NodeID(rng.Intn(n)), target, nil)
		if err != nil {
			return nil, nil, 0, err
		}
		on, ostats, err := oracle.MapCoord(0, target, nil)
		if err != nil {
			return nil, nil, 0, err
		}
		_ = on
		if ostats.Error > 1e-9 {
			ratios.Observe(space.Distance(space.IdealPoint(target), env.Point(dn)) / ostats.Error)
		} else {
			ratios.Observe(1)
		}
		hops.Observe(float64(stats.LookupHops))
	}
	return ratios, hops, env.bits, nil
}

// X4Params configures the re-optimization-under-churn study.
type X4Params struct {
	Scale   Scale
	Seed    int64
	Queries int
	Steps   int
	Churn   workload.Churn
}

// DefaultX4Params returns the full-scale configuration.
func DefaultX4Params() X4Params {
	return X4Params{
		Scale:   Full,
		Seed:    14,
		Queries: 12,
		Steps:   12,
		Churn:   workload.Churn{LoadFraction: 0.25, LoadMax: 0.95},
	}
}

// X4 measures local re-optimization (§3.3) under load churn: two
// identically seeded worlds evolve under the same dynamics, one with the
// migration controller running each step and one static. Reported per
// step: total load penalty (how hard circuits lean on busy nodes) and
// network usage.
func X4(p X4Params) (*Table, error) {
	if p.Queries <= 0 {
		p.Queries = 12
	}
	if p.Steps <= 0 {
		p.Steps = 12
	}
	run := func(reopt bool) ([]float64, []float64, int, error) {
		topo := genTopo(p.Scale, p.Seed)
		rng := rand.New(rand.NewSource(p.Seed * 3))
		stats, err := workload.GenerateStats(topo, workload.DefaultStreamConfig(), rng)
		if err != nil {
			return nil, nil, 0, err
		}
		qCfg := workload.DefaultQueryConfig()
		qCfg.NumQueries = p.Queries
		queries, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
		if err != nil {
			return nil, nil, 0, err
		}
		envCfg := optimizer.DefaultEnvConfig(p.Seed)
		envCfg.UseDHT = false
		env, err := optimizer.NewEnv(topo, stats, envCfg)
		if err != nil {
			return nil, nil, 0, err
		}
		mapper := placement.OracleMapper{Source: env}
		dep := optimizer.NewDeployment(env, nil)
		integ := &optimizer.Integrated{Env: env, Mapper: mapper}
		for _, q := range queries {
			res, err := integ.Optimize(q)
			if err != nil {
				return nil, nil, 0, err
			}
			if err := dep.Deploy(res.Circuit); err != nil {
				return nil, nil, 0, err
			}
		}
		ro := optimizer.NewReoptimizer(dep)
		ro.Mapper = mapper
		truth := optimizer.TrueLatency{Topo: topo}
		churnRng := rand.New(rand.NewSource(p.Seed * 5))
		var penalties, usages []float64
		migrations := 0
		for step := 0; step < p.Steps; step++ {
			workload.ApplyChurn(topo, env, p.Churn, churnRng)
			if reopt {
				st, err := ro.Step()
				if err != nil {
					return nil, nil, 0, err
				}
				migrations += st.Migrations
			}
			penalties = append(penalties, dep.TotalLoadPenalty())
			usages = append(usages, dep.TotalUsage(truth))
		}
		return penalties, usages, migrations, nil
	}

	penStatic, useStatic, _, err := run(false)
	if err != nil {
		return nil, err
	}
	penReopt, useReopt, migrations, err := run(true)
	if err != nil {
		return nil, err
	}
	t := NewTable("X4 — re-optimization under load churn",
		"step", "load penalty static", "load penalty reopt", "usage static", "usage reopt")
	for i := range penStatic {
		t.AddRow(i+1, penStatic[i], penReopt[i], useStatic[i], useReopt[i])
	}
	t.AddNote("migrations performed by the controller: %d", migrations)
	t.AddNote("mean load penalty: static %.4g vs reopt %.4g; mean usage: static %.4g vs reopt %.4g",
		meanOf(penStatic), meanOf(penReopt), meanOf(useStatic), meanOf(useReopt))
	t.AddNote("expected shape: the re-optimizing system keeps load penalty well below the static one at bounded usage cost (§3.3: \"the best nodes to host a service are consistently used\")")
	return t, nil
}

// X5Params configures the DHT hop-scaling measurement.
type X5Params struct {
	Seed    int64
	Sizes   []int
	Lookups int
}

// DefaultX5Params returns the full configuration.
func DefaultX5Params() X5Params {
	return X5Params{Seed: 15, Sizes: []int{32, 64, 128, 256, 512, 1024}, Lookups: 300}
}

// X5 measures Chord lookup hops against ring size — the cost of the
// paper's physical-mapping primitive, expected O(log N).
func X5(p X5Params) (*Table, error) {
	if len(p.Sizes) == 0 {
		p.Sizes = DefaultX5Params().Sizes
	}
	if p.Lookups <= 0 {
		p.Lookups = 300
	}
	t := NewTable("X5 — DHT lookup hops vs ring size", "peers", "mean hops", "max hops", "log2(N)")
	for _, n := range p.Sizes {
		ring := dht.NewRing()
		for i := 0; i < n; i++ {
			if _, err := ring.AddPeer(topology.NodeID(i)); err != nil {
				return nil, err
			}
		}
		rng := rand.New(rand.NewSource(p.Seed + int64(n)))
		total, max := 0, 0
		for k := 0; k < p.Lookups; k++ {
			_, hops, err := ring.Lookup(topology.NodeID(rng.Intn(n)), dht.ID(rng.Uint64()))
			if err != nil {
				return nil, err
			}
			total += hops
			if hops > max {
				max = hops
			}
		}
		t.AddRow(n, float64(total)/float64(p.Lookups), max, math.Log2(float64(n)))
	}
	t.AddNote("expected shape: mean hops tracks ~log2(N)/2 — doubling the overlay adds a constant, not a factor")
	return t, nil
}

// X6Params configures the optimizer-scalability measurement.
type X6Params struct {
	Seed      int64
	StubSizes []int
}

// DefaultX6Params returns the full configuration.
func DefaultX6Params() X6Params {
	return X6Params{Seed: 16, StubSizes: []int{1, 3, 6, 12}}
}

// X6 measures optimization time against network size: the cost-space
// integrated optimizer (relaxation + mapping per candidate plan) versus
// exhaustive placement enumeration of the best plan over all nodes —
// the §4 claim that "enumeration-based query optimization performs
// poorly in a large-scale system".
func X6(p X6Params) (*Table, error) {
	if len(p.StubSizes) == 0 {
		p.StubSizes = DefaultX6Params().StubSizes
	}
	t := NewTable("X6 — optimizer scalability vs network size (3-way join)",
		"nodes", "integrated ms", "exhaustive ms", "speedup", "usage integrated", "usage exhaustive", "usage gap %")
	for _, stubs := range p.StubSizes {
		cfg := topology.DefaultConfig()
		cfg.StubNodes = stubs
		topo := topology.MustGenerate(cfg, rand.New(rand.NewSource(p.Seed)))
		rng := rand.New(rand.NewSource(p.Seed * 9))
		sCfg := workload.DefaultStreamConfig()
		sCfg.NumStreams = 3
		stats, err := workload.GenerateStats(topo, sCfg, rng)
		if err != nil {
			return nil, err
		}
		envCfg := optimizer.DefaultEnvConfig(p.Seed)
		envCfg.UseDHT = false
		// Zero background load: the exhaustive oracle optimizes usage
		// only, so load-avoidance by the cost-space mapper would show up
		// as an artificial usage gap.
		envCfg.MaxBackgroundLoad = 1e-9
		env, err := optimizer.NewEnv(topo, stats, envCfg)
		if err != nil {
			return nil, err
		}
		stubsIDs := topo.StubNodeIDs()
		q := query.Query{
			ID:       1,
			Consumer: stubsIDs[rng.Intn(len(stubsIDs))],
			Streams:  []query.StreamID{0, 1, 2},
		}
		truth := optimizer.TrueLatency{Topo: topo}
		mapper := placement.OracleMapper{Source: env}

		// Both optimizers select under the true-latency model so the
		// usage gap isolates the placement machinery (continuous
		// relaxation + nearest-node mapping vs discrete optimum) from
		// coordinate-estimation error.
		start := time.Now()
		integ, err := (&optimizer.Integrated{Env: env, Mapper: mapper, Model: truth}).Optimize(q)
		if err != nil {
			return nil, err
		}
		tInt := time.Since(start)

		enum := plan.NewEnumerator(stats)
		best, err := enum.Best(q)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		exC, err := (optimizer.ExhaustiveStrategy{Model: truth}).PlaceCircuit(env, q, best)
		if err != nil {
			return nil, err
		}
		tExh := time.Since(start)

		ui := integ.Circuit.NetworkUsage(truth)
		ue := exC.NetworkUsage(truth)
		gap := 100 * (ui - ue) / ue
		t.AddRow(topo.NumNodes(),
			float64(tInt.Microseconds())/1000, float64(tExh.Microseconds())/1000,
			float64(tExh)/float64(tInt), ui, ue, gap)
	}
	t.AddNote("expected shape: exhaustive time grows ~quadratically with node count while integrated stays near-flat; the usage gap (continuous relaxation on imperfect coordinates vs the discrete optimum) stays a bounded factor — the trade §4 argues for")
	return t, nil
}

// X7Params configures the spring-vs-Weiszfeld placement ablation.
type X7Params struct {
	Scale Scale
	Seed  int64
	Runs  int
}

// DefaultX7Params returns the full configuration.
func DefaultX7Params() X7Params { return X7Params{Scale: Full, Seed: 17, Runs: 12} }

// X7 compares the paper's quadratic spring relaxation against direct
// Weiszfeld minimization of Σ rate·latency for virtual placement: how
// much does the quadratic surrogate cost in final measured usage?
func X7(p X7Params) (*Table, error) {
	if p.Runs <= 0 {
		p.Runs = 12
	}
	t := NewTable("X7 — virtual placement objective: spring (rate·d²) vs Weiszfeld (rate·d)",
		"run", "usage spring", "usage weiszfeld", "weiszfeld/spring")
	var ratios []float64
	for run := 1; run <= p.Runs; run++ {
		seed := p.Seed + int64(run)
		topo := genTopo(p.Scale, seed)
		rng := rand.New(rand.NewSource(seed * 21))
		stats, err := workload.GenerateStats(topo, workload.DefaultStreamConfig(), rng)
		if err != nil {
			return nil, err
		}
		qCfg := workload.DefaultQueryConfig()
		qCfg.NumQueries = 1
		qCfg.StreamsPerQuery = [2]int{4, 4}
		qCfg.Templates = 0
		qs, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
		if err != nil {
			return nil, err
		}
		envCfg := optimizer.DefaultEnvConfig(seed)
		envCfg.UseDHT = false
		env, err := optimizer.NewEnv(topo, stats, envCfg)
		if err != nil {
			return nil, err
		}
		mapper := placement.OracleMapper{Source: env}
		truth := optimizer.TrueLatency{Topo: topo}

		spring, err := (&optimizer.Integrated{Env: env, Mapper: mapper, Placer: placement.Relaxation{}}).Optimize(qs[0])
		if err != nil {
			return nil, err
		}
		weisz, err := (&optimizer.Integrated{Env: env, Mapper: mapper, Placer: placement.Weiszfeld{}}).Optimize(qs[0])
		if err != nil {
			return nil, err
		}
		us := spring.Circuit.NetworkUsage(truth)
		uw := weisz.Circuit.NetworkUsage(truth)
		ratios = append(ratios, uw/us)
		t.AddRow(run, us, uw, uw/us)
	}
	t.AddNote("mean weiszfeld/spring usage ratio = %.4f", meanOf(ratios))
	t.AddNote("expected shape: ratio ≈ 1 — after physical mapping quantizes to real nodes, the quadratic surrogate gives up little, which is why the paper's simpler spring model suffices")
	return t, nil
}

// histWrap is a tiny histogram used by ablations without importing
// metrics everywhere.
type histWrap struct {
	vals []float64
}

func (h *histWrap) Observe(v float64) { h.vals = append(h.vals, v) }

func (h *histWrap) Mean() float64 { return meanOf(h.vals) }

func (h *histWrap) Quantile(q float64) float64 {
	if len(h.vals) == 0 {
		return 0
	}
	s := append([]float64(nil), h.vals...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	i := int(q * float64(len(s)-1))
	return s[i]
}

// adhocSource is a minimal placement.NodeSource + DHT catalog for
// experiments that need cost spaces outside the standard Env (e.g. X3's
// dimensionality sweep).
type adhocSource struct {
	space   *costspace.Space
	pts     []costspace.Point
	catalog *dht.Catalog
	bits    uint
}

func (a *adhocSource) Space() *costspace.Space { return a.space }

func (a *adhocSource) NodeIDs() []topology.NodeID {
	out := make([]topology.NodeID, len(a.pts))
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

func (a *adhocSource) Point(n topology.NodeID) costspace.Point { return a.pts[n] }

// spaceBuilder constructs a d-vector + squared-load cost space.
type spaceBuilder struct {
	dims int
}

func (b *spaceBuilder) build() *costspace.Space {
	return &costspace.Space{
		VectorDims: b.dims,
		Scalars: []costspace.ScalarDim{
			{Name: "cpu-load", Weight: costspace.SquaredWeight{Scale: 100}},
		},
	}
}

// newAdhocCatalog publishes random-load points for every topology node
// into a fresh Hilbert-DHT catalog over the given space.
func newAdhocCatalog(topo *topology.Topology, space *costspace.Space, coords []vivaldi.Coord, rng *rand.Rand) (*adhocSource, error) {
	n := topo.NumNodes()
	a := &adhocSource{space: space, pts: make([]costspace.Point, n)}
	for i := 0; i < n; i++ {
		a.pts[i] = space.NewPoint(coords[i], []float64{rng.Float64() * 0.4})
	}
	bits := uint(64 / space.Dims())
	if bits > 16 {
		bits = 16
	}
	a.bits = bits
	curve, err := hilbert.New(uint(space.Dims()), bits)
	if err != nil {
		return nil, err
	}
	all := append([]costspace.Point{}, a.pts...)
	ceiling := space.NewPoint(coords[0], []float64{1.5})
	all = append(all, ceiling)
	bounds, err := costspace.ComputeBounds(all, 0.05)
	if err != nil {
		return nil, err
	}
	ring := dht.NewRing()
	for i := 0; i < n; i++ {
		if _, err := ring.AddPeer(topology.NodeID(i)); err != nil {
			return nil, err
		}
	}
	cat, err := dht.NewCatalog(ring, space, curve, bounds)
	if err != nil {
		return nil, err
	}
	for i, p := range a.pts {
		if _, err := cat.Publish(topology.NodeID(i), p); err != nil {
			return nil, err
		}
	}
	a.catalog = cat
	return a, nil
}
