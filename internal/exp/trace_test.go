package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/trace"
)

// tracedX16 runs the CI-scale crash/repair scenario with a tracer
// attached and returns the serialized JSONL event stream.
func tracedX16(t *testing.T) []byte {
	t.Helper()
	tr := trace.New(simtime.NewVirtual())
	p := smallX16()
	p.Trace = tr
	if _, err := X16(p); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The tentpole determinism contract: two same-seed virtual-clock runs
// of the full crash/detect/repair scenario must serialize to
// bit-identical trace bytes — sequence numbers, timestamps, span ids,
// argument formatting, everything.
func TestX16TraceBitIdentical(t *testing.T) {
	a := tracedX16(t)
	b := tracedX16(t)
	if len(a) == 0 {
		t.Fatal("traced X16 produced no events")
	}
	if !bytes.Equal(a, b) {
		la := strings.Split(string(a), "\n")
		lb := strings.Split(string(b), "\n")
		n := len(la)
		if len(lb) < n {
			n = len(lb)
		}
		for i := 0; i < n; i++ {
			if la[i] != lb[i] {
				t.Fatalf("same-seed traces diverge at line %d:\n  run1: %s\n  run2: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("same-seed traces differ in length: %d vs %d lines", len(la), len(lb))
	}
}

// The trace of a crash/repair run must contain every layer's events:
// injected faults, detector verdicts, repair rounds with per-circuit
// outcomes, migration spans, and optimizer decisions.
func TestX16TraceCoversAllLayers(t *testing.T) {
	raw := tracedX16(t)
	byName := map[string]int{}
	byCat := map[string]int{}
	for _, ln := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		var ev struct {
			Cat  string `json:"cat"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%s", err, ln)
		}
		byName[ev.Name]++
		byCat[ev.Cat]++
	}
	// Crash repair re-instantiates operators on live hosts (the dead
	// source cannot run the live-migration protocol), so repair_move —
	// not migration — is the placement event here; migration spans are
	// covered by the X12 drain test below.
	for _, name := range []string{"fault_crash", "dead", "repair", "repair_move", "plan_incremental"} {
		if byName[name] == 0 {
			t.Errorf("trace has no %q events", name)
		}
	}
	for _, cat := range []string{"overlay", "failure", "adapt", "engine", "optimizer"} {
		if byCat[cat] == 0 {
			t.Errorf("trace has no events in category %q", cat)
		}
	}
}

// A churn drain runs the live-migration protocol under traffic, so its
// trace must carry migration spans with their cutover instants.
func TestX12TraceHasMigrationSpans(t *testing.T) {
	tr := trace.New(simtime.NewVirtual())
	p := smallX12()
	p.Trace = tr
	if _, err := X12(p); err != nil {
		t.Fatal(err)
	}
	begins, cutovers, ends := 0, 0, 0
	for _, ev := range tr.Events() {
		switch {
		case ev.Name == "migration" && ev.Ph == trace.Begin:
			begins++
		case ev.Name == "cutover":
			cutovers++
		case ev.Name == "migration" && ev.Ph == trace.End:
			ends++
		}
	}
	if begins == 0 {
		t.Fatal("churn drain produced no migration spans")
	}
	if ends != begins {
		t.Fatalf("%d migration spans but %d ends", begins, ends)
	}
	if cutovers == 0 {
		t.Fatal("no cutover instants recorded")
	}
}
