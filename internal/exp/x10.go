package exp

import (
	"math/rand"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/placement"
)

// X10Params configures the precomputed-plan-bank comparison.
type X10Params struct {
	Scale Scale
	Seeds int
	// States are the hypothetical-network-state counts to sweep.
	States []int
}

// DefaultX10Params returns the full-scale configuration.
func DefaultX10Params() X10Params {
	return X10Params{Scale: Full, Seeds: 8, States: []int{1, 2, 4, 8}}
}

// X10 quantifies §2.3's critique of precomputed dynamic plans (Graefe &
// Ward [13]): a plan bank compiled under K hypothetical network states is
// compared against two-step (K=0 information) and the integrated
// optimizer (full information) on the Figure 1 workload. The bank
// narrows the gap as K grows — at the cost of guessing the right states
// in advance, which is exactly the limitation the paper calls out.
func X10(p X10Params) (*Table, error) {
	if p.Seeds <= 0 {
		p.Seeds = 8
	}
	if len(p.States) == 0 {
		p.States = []int{1, 2, 4, 8}
	}
	t := NewTable("X10 — precomputed plan banks (Graefe–Ward) vs two-step and integrated",
		"seed", "two-step", "bank K=1", "bank K=2", "bank K=4", "bank K=8",
		"integrated", "distinct plans @K=8")

	type acc struct{ two, integ float64 }
	var sums acc
	bankSums := make([]float64, len(p.States))

	for seed := int64(1); seed <= int64(p.Seeds); seed++ {
		topo := genTopo(p.Scale, seed)
		rng := rand.New(rand.NewSource(seed * 77))
		stats, q, err := fig1Workload(topo, rng)
		if err != nil {
			return nil, err
		}
		envCfg := optimizer.DefaultEnvConfig(seed)
		envCfg.UseDHT = false
		env, err := optimizer.NewEnv(topo, stats, envCfg)
		if err != nil {
			return nil, err
		}
		truth := optimizer.TrueLatency{Topo: topo}
		mapper := placement.OracleMapper{Source: env}

		two, err := (&optimizer.TwoStep{Env: env, Mapper: mapper, Model: truth}).Optimize(q)
		if err != nil {
			return nil, err
		}
		integ, err := (&optimizer.Integrated{Env: env, Mapper: mapper, Model: truth}).Optimize(q)
		if err != nil {
			return nil, err
		}
		u2 := two.Circuit.NetworkUsage(truth)
		ui := integ.Circuit.NetworkUsage(truth)
		sums.two += u2
		sums.integ += ui

		row := []any{seed, u2}
		distinct := 0
		for i, k := range p.States {
			pb := optimizer.NewPlanBank(env)
			pb.Mapper = mapper
			pb.Model = truth
			n, err := pb.Compile(q, k, 0.6)
			if err != nil {
				return nil, err
			}
			res, err := pb.Optimize(q)
			if err != nil {
				return nil, err
			}
			ub := res.Circuit.NetworkUsage(truth)
			bankSums[i] += ub
			row = append(row, ub)
			distinct = n
		}
		row = append(row, ui, distinct)
		t.AddRow(row...)
	}
	n := float64(p.Seeds)
	t.AddNote("mean usage: two-step %.4g; banks %v; integrated %.4g",
		sums.two/n, meansOf(bankSums, n), sums.integ/n)
	t.AddNote("expected shape: bank usage falls toward integrated as K grows, but only integration (which places *every* candidate under live state) closes the gap without guessing future states (§2.3)")
	return t, nil
}

func meansOf(sums []float64, n float64) []float64 {
	out := make([]float64, len(sums))
	for i, s := range sums {
		out[i] = float64(int(s/n*10)) / 10
	}
	return out
}
