package exp

import (
	"bytes"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/workload"
)

func TestTableFormatting(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 3.14159265)
	tb.AddNote("note %d", 7)
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a", "b", "3.142", "# note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if tb.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow(1, "two")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || lines[0] != "a,b" || lines[1] != "1,two" {
		t.Fatalf("csv = %q", buf.String())
	}
}

// parse a float cell.
func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		// Allow "inf" spellings etc.
		t.Fatalf("cell (%d,%d) = %q not a float: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestFig1SmallShape(t *testing.T) {
	tb, err := Fig1(Fig1Params{Scale: Small, Seeds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	// usage ratio (col 5) should average >= ~1: integrated not worse.
	var sum float64
	for i := range tb.Rows {
		sum += cell(t, tb, i, 5)
	}
	if mean := sum / 5; mean < 0.95 {
		t.Fatalf("mean two-step/integrated usage ratio %v < 0.95", mean)
	}
}

func TestFig2SmallShape(t *testing.T) {
	var pts bytes.Buffer
	tb, err := Fig2(Fig2Params{Scale: Small, Seed: 2, PointsCSV: &pts})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Node count row must match the small topology (44 nodes).
	if tb.Rows[0][1] != "44" {
		t.Fatalf("node count = %q, want 44", tb.Rows[0][1])
	}
	lines := strings.Split(strings.TrimSpace(pts.String()), "\n")
	if len(lines) != 45 { // header + 44 nodes
		t.Fatalf("points csv lines = %d, want 45", len(lines))
	}
	// Embedding error must be sane.
	med, err := strconv.ParseFloat(tb.Rows[4][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if med <= 0 || med > 0.5 {
		t.Fatalf("median embedding error %v out of expected range", med)
	}
}

func TestFig3SmallShape(t *testing.T) {
	tb, err := Fig3(Fig3Params{Scale: Small, Seed: 3, Trials: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 mappers", len(tb.Rows))
	}
	byName := map[string]int{}
	for i, r := range tb.Rows {
		byName[r[0]] = i
	}
	fullPct := cell(t, tb, byName["hilbert-dht"], 1)
	oraclePct := cell(t, tb, byName["oracle"], 1)
	vecPct := cell(t, tb, byName["vector-only"], 1)
	if vecPct < 90 {
		t.Fatalf("vector-only picked overloaded node only %v%%, want ~100", vecPct)
	}
	if fullPct > 20 || oraclePct > 20 {
		t.Fatalf("full-space mappers picked overloaded node too often: dht %v%%, oracle %v%%", fullPct, oraclePct)
	}
}

func TestFig4SmallShape(t *testing.T) {
	tb, err := Fig4(Fig4Params{Scale: Small, Seed: 4, Background: 10, Probes: 6,
		Radii: []float64{0, 20, math.Inf(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Examined (col 1) monotone nondecreasing in radius.
	if cell(t, tb, 0, 1) > cell(t, tb, 1, 1) || cell(t, tb, 1, 1) > cell(t, tb, 2, 1) {
		t.Fatalf("examined not monotone: %v %v %v", cell(t, tb, 0, 1), cell(t, tb, 1, 1), cell(t, tb, 2, 1))
	}
	// r=0 reuses nothing; full MQO should reuse something with
	// template-skewed background.
	if cell(t, tb, 0, 2) != 0 {
		t.Fatalf("r=0 reuse rate = %v, want 0", cell(t, tb, 0, 2))
	}
	if cell(t, tb, 2, 2) == 0 {
		t.Fatal("full MQO found no reuse despite template sharing")
	}
	// Usage at full MQO must not exceed the no-reuse baseline.
	if cell(t, tb, 2, 5) > 100+1e-9 {
		t.Fatalf("full MQO usage %v%% of baseline, want <= 100", cell(t, tb, 2, 5))
	}
}

func TestX1SmallShape(t *testing.T) {
	tb, err := X1(X1Params{Scale: Small, Seed: 11, QueryCounts: []int{4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		randomRatio := cell(t, tb, i, 5)
		if randomRatio < 1 {
			t.Fatalf("random placement beat relaxation (ratio %v)", randomRatio)
		}
	}
}

func TestX2SmallShape(t *testing.T) {
	tb, err := X2(X2Params{Scale: Small, Seed: 12, Rounds: []int{1, 10, 50}})
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tb, 0, 1)
	last := cell(t, tb, 2, 1)
	if last >= first {
		t.Fatalf("error did not fall with rounds: %v -> %v", first, last)
	}
}

func TestX3SmallShape(t *testing.T) {
	tb, err := X3(X3Params{Scale: Small, Seed: 13, Dims: []int{2, 4}, Targets: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		ratio := cell(t, tb, i, 2)
		if ratio < 1-1e-9 || ratio > 10 {
			t.Fatalf("dims row %d: err ratio %v implausible", i, ratio)
		}
	}
}

func TestX4SmallShape(t *testing.T) {
	tb, err := X4(X4Params{Scale: Small, Seed: 14, Queries: 5, Steps: 5,
		Churn: workload.Churn{LoadFraction: 0.3, LoadMax: 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var static, reopt float64
	for i := range tb.Rows {
		static += cell(t, tb, i, 1)
		reopt += cell(t, tb, i, 2)
	}
	if reopt > static*1.05 {
		t.Fatalf("re-optimization increased load penalty: static %v vs reopt %v", static, reopt)
	}
}

func TestX5Shape(t *testing.T) {
	tb, err := X5(X5Params{Seed: 15, Sizes: []int{32, 256}, Lookups: 100})
	if err != nil {
		t.Fatal(err)
	}
	small := cell(t, tb, 0, 1)
	large := cell(t, tb, 1, 1)
	if large > small*4 {
		t.Fatalf("hops not logarithmic: %v vs %v", small, large)
	}
}

func TestX6SmallShape(t *testing.T) {
	tb, err := X6(X6Params{Seed: 16, StubSizes: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Exhaustive must be at least as good on usage (it is the oracle),
	// within numeric tolerance.
	for i := range tb.Rows {
		gap := cell(t, tb, i, 6)
		if gap < -1 {
			t.Fatalf("integrated beat exhaustive by %v%% — exhaustive is broken", -gap)
		}
	}
}

func TestX7SmallShape(t *testing.T) {
	tb, err := X7(X7Params{Scale: Small, Seed: 17, Runs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		ratio := cell(t, tb, i, 3)
		if ratio < 0.3 || ratio > 3 {
			t.Fatalf("run %d: weiszfeld/spring ratio %v implausible", i, ratio)
		}
	}
}

func TestX8Quick(t *testing.T) {
	// Virtual time: a 60-simulated-second window per circuit, instant.
	tb, err := X8(X8Params{Seed: 18, RunFor: 600 * time.Millisecond, Virtual: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Relay and filter usage ratios should be near 1.
	for i := 0; i < 2; i++ {
		ratio := cell(t, tb, i, 3)
		if ratio < 0.4 || ratio > 2.0 {
			t.Fatalf("row %d usage ratio %v far from 1", i, ratio)
		}
	}
}

// TestX8WallClockMatchesVirtual runs the wall-clock engine and checks
// its measurements agree with the analytic model within the same
// tolerances the virtual engine meets — the cross-validation that the
// discrete-event kernel did not change what is being measured.
func TestX8WallClockMatchesVirtual(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	wall, err := X8(X8Params{Seed: 18, RunFor: 600 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	virt, err := X8(X8Params{Seed: 18, RunFor: 600 * time.Millisecond, Virtual: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // relay + filter rows; joins are noisy
		for _, col := range []int{3, 6} { // usage ratio, rate ratio
			w := cell(t, wall, i, col)
			v := cell(t, virt, i, col)
			if w < 0.4 || w > 2.0 {
				t.Fatalf("row %d col %d: wall-clock ratio %v far from 1", i, col, w)
			}
			if v < 0.4 || v > 2.0 {
				t.Fatalf("row %d col %d: virtual ratio %v far from 1", i, col, v)
			}
			if diff := w/v - 1; diff < -0.5 || diff > 0.5 {
				t.Fatalf("row %d col %d: wall %v vs virtual %v disagree", i, col, w, v)
			}
		}
	}
}

// TestX8VirtualDeterministic demands bit-identical tables from two
// same-seed virtual runs — the reproducibility acceptance criterion.
func TestX8VirtualDeterministic(t *testing.T) {
	run := func() *Table {
		tb, err := X8(X8Params{Seed: 18, RunFor: 400 * time.Millisecond, Virtual: true})
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	a, b := run(), run()
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("same-seed virtual X8 diverged at row %d col %d: %q vs %q",
					i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestX11SmallShape(t *testing.T) {
	p := X11Params{Seed: 19, StubNodes: 5, Streams: 8, Queries: 25, SimSeconds: 2,
		HeartbeatEvery: 500 * time.Millisecond, TupleSizeKB: 4}
	tb, err := X11(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if nodes := cell(t, tb, 0, 0); nodes != 256 {
		t.Fatalf("nodes = %v, want 256", nodes)
	}
	if circuits := cell(t, tb, 0, 1); circuits != 25 {
		t.Fatalf("circuits = %v, want 25", circuits)
	}
	if tuples := cell(t, tb, 0, 3); tuples <= 0 {
		t.Fatal("no tuples delivered")
	}
	if beats := cell(t, tb, 0, 5); beats <= 0 {
		t.Fatal("no heartbeats delivered")
	}
	// Aggregate rate tracks the model; joins make usage noisier.
	if r := cell(t, tb, 0, 6); r < 0.4 || r > 2 {
		t.Fatalf("aggregate rate ratio %v far from 1", r)
	}
	if r := cell(t, tb, 0, 7); r < 0.3 || r > 2.5 {
		t.Fatalf("aggregate usage ratio %v far from 1", r)
	}
}

// TestX11Deterministic checks same-seed reproducibility of the scenario
// measurements (all columns except the wall-time stopwatch).
func TestX11Deterministic(t *testing.T) {
	p := X11Params{Seed: 19, StubNodes: 5, Streams: 8, Queries: 15, SimSeconds: 1,
		HeartbeatEvery: 500 * time.Millisecond, TupleSizeKB: 4}
	run := func() []string {
		tb, err := X11(p)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Rows[0][:8] // drop the wall-ms column
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed X11 diverged at col %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestRunSelected(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, []string{"x5"}, RunOptions{Scale: Small}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "X5") {
		t.Fatalf("output missing X5 table:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, []string{"nope"}, RunOptions{Scale: Small}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := Run(&buf, []string{"x5"}, RunOptions{Scale: Small, OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := readFile(dir + "/x5.csv"); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig1"); !ok {
		t.Fatal("fig1 missing")
	}
	if _, ok := Lookup("bogus"); ok {
		t.Fatal("bogus found")
	}
	if _, ok := Lookup("x15"); !ok {
		t.Fatal("x15 missing")
	}
	if len(All()) != 22 {
		t.Fatalf("All() = %d experiments, want 22", len(All()))
	}
}

func TestX10SmallShape(t *testing.T) {
	tb, err := X10(X10Params{Scale: Small, Seeds: 3, States: []int{1, 2, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		bank8 := cell(t, tb, i, 5)
		integ := cell(t, tb, i, 6)
		// Integrated considers a superset of the bank's plans under the
		// same model.
		if integ > bank8+1e-6 {
			t.Fatalf("row %d: integrated %v worse than bank %v", i, integ, bank8)
		}
	}
}

func TestX9SmallShape(t *testing.T) {
	tb, err := X9(X9Params{Scale: Small, Seeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		before := cell(t, tb, i, 1)
		after := cell(t, tb, i, 2)
		if after > before+1e-6 {
			t.Fatalf("seed row %d: rewriting increased usage %v -> %v", i, before, after)
		}
	}
}

func readFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// smallX12 is the CI-scale churn configuration.
func smallX12() X12Params {
	p := DefaultX12Params()
	p.StubNodes = 5 // 256 nodes
	p.Queries = 12
	p.WarmupSimSeconds = 2
	return p
}

func TestX12SmallShape(t *testing.T) {
	tb, err := X12(smallX12())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (drain+kill, rejoin+sweep)", len(tb.Rows))
	}
	for i, phase := range []string{"drain+kill", "rejoin+sweep"} {
		if tb.Rows[i][0] != phase {
			t.Fatalf("row %d phase = %q, want %q", i, tb.Rows[i][0], phase)
		}
		if loss := cell(t, tb, i, 6); loss != 0 {
			t.Fatalf("%s: tuple loss %v, want 0", phase, loss)
		}
	}
	// Killing nodes must actually migrate something and take measurable
	// settle time.
	if m := cell(t, tb, 0, 2); m <= 0 {
		t.Fatal("drain phase migrated nothing")
	}
	if s := cell(t, tb, 0, 5); s <= 0 {
		t.Fatal("drain phase reported no settle time")
	}
}

func TestX12Deterministic(t *testing.T) {
	run := func() [][]string {
		tb, err := X12(smallX12())
		if err != nil {
			t.Fatal(err)
		}
		return tb.Rows
	}
	a, b := run(), run()
	for r := range a {
		for c := range a[r] {
			if a[r][c] != b[r][c] {
				t.Fatalf("same-seed X12 diverged at (%d,%d): %q vs %q", r, c, a[r][c], b[r][c])
			}
		}
	}
}

// smallX13 is the CI-scale adaptation configuration.
func smallX13() X13Params {
	p := DefaultX13Params()
	p.StubNodes = 5 // 256 nodes
	p.Queries = 30
	p.Budget = 6
	p.IntervalSimSeconds = 1
	p.WarmupSimSeconds = 2
	return p
}

func TestX13SmallShape(t *testing.T) {
	tb, err := X13(smallX13())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 sweeps", len(tb.Rows))
	}
	migrated := 0.0
	for i := range tb.Rows {
		migrated += cell(t, tb, i, 2)
		if before, after := cell(t, tb, i, 3), cell(t, tb, i, 4); after > before {
			t.Fatalf("sweep %d increased usage: %v → %v", i+1, before, after)
		}
	}
	if migrated == 0 {
		t.Fatal("no migrations across any sweep")
	}
}

// TestX13FullScaleTrajectory runs the acceptance-criterion configuration
// (1024 nodes) and requires a strictly decreasing usage trajectory over
// at least 3 sweeps with zero loss. The whole run is sub-second under
// virtual time, so it is feasible as a test.
func TestX13FullScaleTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node scenario skipped in -short")
	}
	tb, err := X13(DefaultX13Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 3 {
		t.Fatalf("only %d sweeps", len(tb.Rows))
	}
	decreases := 0
	for i := range tb.Rows {
		before, after := cell(t, tb, i, 3), cell(t, tb, i, 4)
		if after < before {
			decreases++
		}
		if after > before {
			t.Fatalf("sweep %d increased total usage: %v → %v", i+1, before, after)
		}
	}
	if decreases < 3 {
		t.Fatalf("usage strictly decreased in only %d sweeps, want >= 3", decreases)
	}
}

func TestX13Deterministic(t *testing.T) {
	run := func() [][]string {
		tb, err := X13(smallX13())
		if err != nil {
			t.Fatal(err)
		}
		return tb.Rows
	}
	a, b := run(), run()
	for r := range a {
		for c := range a[r] {
			if a[r][c] != b[r][c] {
				t.Fatalf("same-seed X13 diverged at (%d,%d): %q vs %q", r, c, a[r][c], b[r][c])
			}
		}
	}
}

// smallX14 is the CI-scale shared-execution configuration.
func smallX14() X14Params {
	p := DefaultX14Params()
	p.StubNodes = 5 // 256 nodes
	p.Groups = 8
	p.PerGroup = 3
	p.MeasureSimSeconds = 2
	return p
}

func TestX14SmallShape(t *testing.T) {
	tb, err := X14(smallX14())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want reuse-on and reuse-off", len(tb.Rows))
	}
	on, off := tb.Rows[0], tb.Rows[1]
	if cell(t, tb, 0, 2) == 0 || cell(t, tb, 0, 3) == 0 {
		t.Fatalf("reuse-on pass shared nothing: %v", on)
	}
	if cell(t, tb, 1, 2) != 0 {
		t.Fatalf("reuse-off pass reused services: %v", off)
	}
	onUsage, offUsage := cell(t, tb, 0, 5), cell(t, tb, 1, 5)
	if !(onUsage < offUsage) {
		t.Fatalf("reuse did not lower data-plane usage: %v vs %v", onUsage, offUsage)
	}
	if cell(t, tb, 0, 6) == 0 {
		t.Fatal("reuse-on pass delivered nothing")
	}
	for r := 0; r < 2; r++ {
		if loss := cell(t, tb, r, 8); loss != 0 {
			t.Fatalf("row %d lost %v messages", r, loss)
		}
	}
}

// TestX14FullScale runs the acceptance-criterion configuration: 200
// queries over 40 shared subtrees on the 1024-node overlay, measured
// usage with reuse strictly below the no-reuse run, zero loss.
func TestX14FullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node scenario skipped in -short")
	}
	tb, err := X14(DefaultX14Params())
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tb, 0, 1); got != 200 {
		t.Fatalf("circuits = %v, want 200", got)
	}
	onUsage, offUsage := cell(t, tb, 0, 5), cell(t, tb, 1, 5)
	if !(onUsage < offUsage) {
		t.Fatalf("reuse did not lower data-plane usage at full scale: %v vs %v", onUsage, offUsage)
	}
	if shared := cell(t, tb, 0, 3); shared < float64(DefaultX14Params().Groups)/2 {
		t.Fatalf("only %v shared instances executing, want most of the %d groups", shared, DefaultX14Params().Groups)
	}
	for r := 0; r < 2; r++ {
		if loss := cell(t, tb, r, 8); loss != 0 {
			t.Fatalf("row %d lost %v messages", r, loss)
		}
	}
}

// smallX15 is the CI-scale incremental re-planning configuration.
func smallX15() X15Params {
	p := DefaultX15Params()
	p.StubNodes = 5 // 256 nodes
	p.Queries = 40
	return p
}

func TestX15SmallShape(t *testing.T) {
	tb, err := X15(smallX15())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(smallX15().DeltaFractions) {
		t.Fatalf("rows = %d, want one per delta fraction", len(tb.Rows))
	}
	// Small deltas must stay incremental and evaluate strictly fewer
	// services than the full sweep; X15 itself errors if any round's
	// plans diverge, so finishing at all certifies equivalence.
	for i := 0; i < 2; i++ {
		if tb.Rows[i][6] != "true" && cell(t, tb, i, 5) <= 1 {
			t.Fatalf("delta row %d: speedup %v, want > 1 (row %v)", i, cell(t, tb, i, 5), tb.Rows[i])
		}
		if tb.Rows[i][6] == "true" {
			t.Fatalf("delta row %d degenerated to a full sweep: %v", i, tb.Rows[i])
		}
	}
	// The oversized last delta must trip the full-sweep fallback.
	last := len(tb.Rows) - 1
	if tb.Rows[last][6] != "true" {
		t.Fatalf("oversized delta did not fall back to a full sweep: %v", tb.Rows[last])
	}
}

func TestX15Deterministic(t *testing.T) {
	run := func() [][]string {
		tb, err := X15(smallX15())
		if err != nil {
			t.Fatal(err)
		}
		return tb.Rows
	}
	a, b := run(), run()
	for r := range a {
		for c := range a[r] {
			if a[r][c] != b[r][c] {
				t.Fatalf("same-seed X15 diverged at (%d,%d): %q vs %q", r, c, a[r][c], b[r][c])
			}
		}
	}
}

// TestX15FullScaleSpeedup runs the acceptance-criterion configuration:
// on 1024 nodes with 200 circuits, a 1%-node delta must re-evaluate at
// least 10x fewer services than the full sweep while producing the
// identical plan.
func TestX15FullScaleSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node scenario skipped in -short")
	}
	tb, err := X15(DefaultX15Params())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range DefaultX15Params().DeltaFractions {
		if f != 0.01 {
			continue
		}
		if speedup := cell(t, tb, i, 5); speedup < 10 {
			t.Fatalf("1%%-delta speedup %.1fx, want >= 10x (row %v)", speedup, tb.Rows[i])
		}
		if tb.Rows[i][6] != "false" {
			t.Fatalf("1%%-delta round was not incremental: %v", tb.Rows[i])
		}
	}
}

func TestX14Deterministic(t *testing.T) {
	run := func() [][]string {
		tb, err := X14(smallX14())
		if err != nil {
			t.Fatal(err)
		}
		return tb.Rows
	}
	a, b := run(), run()
	for r := range a {
		for c := range a[r] {
			if a[r][c] != b[r][c] {
				t.Fatalf("same-seed X14 diverged at (%d,%d): %q vs %q", r, c, a[r][c], b[r][c])
			}
		}
	}
}

// smallX16 is the CI-scale failure-recovery configuration (256 nodes,
// ~13 crashes).
func smallX16() X16Params {
	p := DefaultX16Params()
	p.StubNodes = 5 // 256 nodes
	p.Queries = 30
	p.WarmupSimSeconds = 2
	p.CrashSpreadSimSeconds = 2
	p.RunSimSeconds = 6
	return p
}

func TestX16SmallShape(t *testing.T) {
	tb, err := X16(smallX16())
	if err != nil {
		t.Fatal(err)
	}
	// X16 itself errors when any crash goes undetected, a circuit is
	// cancelled, a service remains on a corpse, or nothing was lost —
	// the rows here are the per-round activity trace.
	if len(tb.Rows) == 0 {
		t.Fatal("no active repair rounds recorded")
	}
	died, repaired, aborted := 0.0, 0.0, 0.0
	for i := range tb.Rows {
		died += cell(t, tb, i, 2)
		repaired += cell(t, tb, i, 4)
		aborted += cell(t, tb, i, 6)
	}
	if died == 0 {
		t.Fatal("no deaths detected")
	}
	if repaired == 0 {
		t.Fatal("no services repaired")
	}
	if repaired < aborted {
		t.Fatalf("more aborts (%v) than repairs (%v)", aborted, repaired)
	}
}

func TestX16Deterministic(t *testing.T) {
	run := func() [][]string {
		tb, err := X16(smallX16())
		if err != nil {
			t.Fatal(err)
		}
		return tb.Rows
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("same-seed X16 row counts diverged: %d vs %d", len(a), len(b))
	}
	for r := range a {
		for c := range a[r] {
			if a[r][c] != b[r][c] {
				t.Fatalf("same-seed X16 diverged at (%d,%d): %q vs %q", r, c, a[r][c], b[r][c])
			}
		}
	}
}

// TestX16FullScale runs the acceptance-criterion configuration: 1024
// nodes, 5% staggered crashes under 1% ambient message loss. Every
// affected circuit must repair onto live nodes with zero manual
// Evacuate calls and zero cancellations (X16 errors otherwise), with
// deaths detected for every crashed node.
func TestX16FullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node scenario skipped in -short")
	}
	tb, err := X16(DefaultX16Params())
	if err != nil {
		t.Fatal(err)
	}
	died, repaired := 0.0, 0.0
	for i := range tb.Rows {
		died += cell(t, tb, i, 2)
		repaired += cell(t, tb, i, 4)
	}
	if want := 51.0; died != want { // 5% of 1024, rounded
		t.Fatalf("deaths detected = %v, want %v", died, want)
	}
	if repaired == 0 {
		t.Fatal("no services repaired at full scale")
	}
}
