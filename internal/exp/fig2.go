package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/topology"
)

// Fig2Params configures the Figure 2 reproduction.
type Fig2Params struct {
	Scale Scale
	Seed  int64
	// PointsCSV, when non-nil, receives one row per node
	// (id,kind,x,y,load,load_weighted) — the scatter the paper plots.
	PointsCSV io.Writer
}

// DefaultFig2Params returns the full-scale configuration (≈600 nodes,
// the paper's Figure 2 setting).
func DefaultFig2Params() Fig2Params { return Fig2Params{Scale: Full, Seed: 2} }

// Fig2 reproduces Figure 2: ~600 transit-stub nodes embedded in a
// 3-dimensional cost space — two Vivaldi latency dimensions (x,y) and a
// squared CPU-load dimension (z). The table reports what the figure
// shows qualitatively: the scale of the point cloud, the fidelity of the
// latency embedding, and how the squared weighting stretches loaded
// nodes away from the latency plane.
func Fig2(p Fig2Params) (*Table, error) {
	topo := genTopo(p.Scale, p.Seed)
	cfg := optimizer.DefaultEnvConfig(p.Seed)
	env, err := optimizer.NewEnv(topo, nil, cfg)
	if err != nil {
		return nil, err
	}
	space := env.Space()

	var xs, ys, loads, weights []float64
	for _, id := range env.NodeIDs() {
		pt := env.Point(id)
		xs = append(xs, pt[0])
		ys = append(ys, pt[1])
		loads = append(loads, env.Load(id))
		weights = append(weights, space.ScalarComponents(pt)[0])
	}
	sort.Float64s(loads)
	sort.Float64s(weights)

	stats := topo.ComputeStats()
	q := env.EmbeddingQuality

	t := NewTable("Figure 2 — transit-stub topology in a 3-D cost space (latency × latency × load²)",
		"metric", "value")
	t.AddRow("nodes", stats.Nodes)
	t.AddRow("transit / stub nodes", fmt.Sprintf("%d / %d", stats.TransitNodes, stats.StubNodes))
	t.AddRow("stub domains", stats.StubDomains)
	t.AddRow("pairwise latency ms (min/mean/max)", fmt.Sprintf("%.1f / %.1f / %.1f", stats.MinLatency, stats.MeanLatency, stats.MaxLatency))
	t.AddRow("vivaldi rel. err (median)", q.MedianRelErr)
	t.AddRow("vivaldi rel. err (p90)", q.P90RelErr)
	t.AddRow("coordinate spread x (ms)", spread(xs))
	t.AddRow("coordinate spread y (ms)", spread(ys))
	t.AddRow("raw load (p50/p90/max)", fmt.Sprintf("%.2f / %.2f / %.2f", pct(loads, 0.5), pct(loads, 0.9), pct(loads, 1)))
	t.AddRow("load² dimension ms (p50/p90/max)", fmt.Sprintf("%.1f / %.1f / %.1f", pct(weights, 0.5), pct(weights, 0.9), pct(weights, 1)))
	t.AddNote("expected shape: embedding error small (coordinates usable as a latency metric); squared weighting keeps the median node near the plane while pushing the loaded tail up (paper's node a)")

	if p.PointsCSV != nil {
		if err := writeFig2Points(p.PointsCSV, env, topo); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func writeFig2Points(w io.Writer, env *optimizer.Env, topo *topology.Topology) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "kind", "x_ms", "y_ms", "load", "load_weighted_ms"}); err != nil {
		return fmt.Errorf("exp: fig2 csv header: %w", err)
	}
	space := env.Space()
	for _, id := range env.NodeIDs() {
		pt := env.Point(id)
		rec := []string{
			strconv.Itoa(int(id)),
			topo.Node(id).Kind.String(),
			strconv.FormatFloat(pt[0], 'f', 3, 64),
			strconv.FormatFloat(pt[1], 'f', 3, 64),
			strconv.FormatFloat(env.Load(id), 'f', 4, 64),
			strconv.FormatFloat(space.ScalarComponents(pt)[0], 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("exp: fig2 csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func spread(v []float64) string {
	min, max := v[0], v[0]
	for _, x := range v {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return fmt.Sprintf("[%.1f, %.1f]", min, max)
}

// pct returns the q-quantile of sorted data.
func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
