package exp

import (
	"math/rand"

	"github.com/hourglass/sbon/internal/metrics"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// Fig3Params configures the Figure 3 reproduction.
type Fig3Params struct {
	Scale  Scale
	Seed   int64
	Trials int
}

// DefaultFig3Params returns the full-scale configuration.
func DefaultFig3Params() Fig3Params { return Fig3Params{Scale: Full, Seed: 3, Trials: 150} }

// Fig3 reproduces Figure 3: virtual placement followed by physical
// mapping in the cost space. Per trial, a virtual coordinate is chosen
// and the node nearest to it in the latency plane is overloaded (the
// paper's node N1). Three mappers are compared:
//
//   - hilbert-dht  — the paper's mechanism: DHT lookup of the coordinate,
//     rank nearby published coordinates by full-space distance;
//   - oracle       — exact full-space nearest (ground truth);
//   - vector-only  — latency-plane nearest, blind to load (the N1 trap).
//
// The full-space mappers must route around the overloaded node; the
// vector-only mapper must fall into it. Mapping error is the full-space
// distance between the virtual coordinate and the chosen node.
func Fig3(p Fig3Params) (*Table, error) {
	if p.Trials <= 0 {
		p.Trials = 150
	}
	topo := genTopo(p.Scale, p.Seed)
	cfg := optimizer.DefaultEnvConfig(p.Seed)
	env, err := optimizer.NewEnv(topo, nil, cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed * 31))
	space := env.Space()

	mappers := []placement.Mapper{
		placement.DHTMapper{Catalog: env.Catalog(), Candidates: 8, MaxScan: 48},
		placement.OracleMapper{Source: env},
		placement.VectorOnlyMapper{Source: env},
	}
	type acc struct {
		overloaded int
		errs       *metrics.Histogram
		hops       *metrics.Histogram
	}
	accs := make(map[string]*acc, len(mappers))
	for _, m := range mappers {
		accs[m.Name()] = &acc{errs: &metrics.Histogram{}, hops: &metrics.Histogram{}}
	}

	n := topo.NumNodes()
	for trial := 0; trial < p.Trials; trial++ {
		// A virtual coordinate near a random node, jittered: where
		// relaxation placement might land.
		anchor := topology.NodeID(rng.Intn(n))
		base := env.VecCoord(anchor)
		target := vivaldi.Coord{base[0] + rng.NormFloat64()*3, base[1] + rng.NormFloat64()*3}

		// Overload the latency-nearest node: the paper's N1.
		n1 := nearestInVectorPlane(env, target)
		savedLoad := env.Load(n1)
		env.SetBackgroundLoad(n1, 0.95)

		ideal := space.IdealPoint(target)
		for _, m := range mappers {
			node, stats, err := m.MapCoord(topology.NodeID(rng.Intn(n)), target, nil)
			if err != nil {
				return nil, err
			}
			a := accs[m.Name()]
			if node == n1 {
				a.overloaded++
			}
			a.errs.Observe(space.Distance(ideal, env.Point(node)))
			a.hops.Observe(float64(stats.LookupHops))
		}
		env.SetBackgroundLoad(n1, savedLoad)
	}

	t := NewTable("Figure 3 — virtual placement + physical mapping (overloaded nearest node N1)",
		"mapper", "picked overloaded N1 %", "mean map error", "p95 map error", "mean DHT hops")
	for _, m := range mappers {
		a := accs[m.Name()]
		t.AddRow(m.Name(),
			100*float64(a.overloaded)/float64(p.Trials),
			a.errs.Mean(), a.errs.Quantile(0.95), a.hops.Mean())
	}
	oracleErr := accs["oracle"].errs.Mean()
	dhtErr := accs["hilbert-dht"].errs.Mean()
	if oracleErr > 0 {
		t.AddNote("hilbert-dht mapping error / oracle = %.3f (paper: \"for realistic topologies ... this error remains small\")", dhtErr/oracleErr)
	}
	t.AddNote("expected shape: vector-only falls into N1 almost always; full-space mappers avoid it (paper: N1's load makes it \"seem far away\")")
	return t, nil
}

// nearestInVectorPlane returns the node whose vector coordinate is
// closest to target, ignoring load.
func nearestInVectorPlane(env *optimizer.Env, target vivaldi.Coord) topology.NodeID {
	best := topology.NodeID(0)
	bestD := -1.0
	for _, id := range env.NodeIDs() {
		d := env.VecCoord(id).Distance(target)
		if bestD < 0 || d < bestD {
			best, bestD = id, d
		}
	}
	return best
}
