package exp

import (
	"fmt"
	"math/rand"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// Fig1Params configures the Figure 1 reproduction.
type Fig1Params struct {
	Scale Scale
	// Seeds is the number of independent topology/placement draws.
	Seeds int
}

// DefaultFig1Params returns the full-scale configuration.
func DefaultFig1Params() Fig1Params { return Fig1Params{Scale: Full, Seeds: 15} }

// Fig1 reproduces Figure 1: the inefficiency of two-step optimization.
//
// Setup per seed: a 4-way join whose producers sit in two distant stub
// clusters (P1,P2 in one, P3,P4 in another) with a consumer elsewhere —
// the paper's geometry. Pairwise selectivities are set so that the
// network-oblivious rate model marginally prefers the *cross-cluster*
// bushy plan (the paper's "Query Plan 1" trap: "assuming the
// selectivities of the two plans were roughly the same"), so the
// two-step optimizer deploys it. The integrated optimizer places all 15
// candidate join trees in the cost space and sees that the cluster-local
// plan yields a far cheaper circuit.
//
// Reported: network usage (Σ rate·latency, measured on the true
// topology) and consumer latency of both deployed circuits.
func Fig1(p Fig1Params) (*Table, error) {
	if p.Seeds <= 0 {
		p.Seeds = 15
	}
	t := NewTable("Figure 1 — two-step vs integrated optimization (4-way join, clustered producers)",
		"seed", "two-step plan", "integrated plan", "usage two-step", "usage integrated",
		"usage ratio", "latency two-step", "latency integrated")

	var ratios, latRatios []float64
	wins := 0
	for seed := int64(1); seed <= int64(p.Seeds); seed++ {
		topo := genTopo(p.Scale, seed)
		rng := rand.New(rand.NewSource(seed * 77))
		stats, q, err := fig1Workload(topo, rng)
		if err != nil {
			return nil, err
		}
		cfg := optimizer.DefaultEnvConfig(seed)
		env, err := optimizer.NewEnv(topo, stats, cfg)
		if err != nil {
			return nil, err
		}
		truth := optimizer.TrueLatency{Topo: topo}

		two, err := optimizer.NewTwoStep(env).Optimize(q)
		if err != nil {
			return nil, err
		}
		integ, err := optimizer.NewIntegrated(env).Optimize(q)
		if err != nil {
			return nil, err
		}
		u2 := two.Circuit.NetworkUsage(truth)
		ui := integ.Circuit.NetworkUsage(truth)
		l2 := two.Circuit.ConsumerLatency(truth)
		li := integ.Circuit.ConsumerLatency(truth)
		ratio := u2 / ui
		ratios = append(ratios, ratio)
		latRatios = append(latRatios, l2/li)
		if ui < u2 {
			wins++
		}
		t.AddRow(seed, two.Circuit.Plan.String(), integ.Circuit.Plan.String(), u2, ui, ratio, l2, li)
	}
	t.AddNote("mean usage ratio (two-step / integrated) = %.3f; integrated strictly cheaper in %d/%d seeds",
		meanOf(ratios), wins, p.Seeds)
	t.AddNote("mean consumer-latency ratio = %.3f", meanOf(latRatios))
	t.AddNote("expected shape: ratio > 1 on most seeds — the rate-optimal plan decomposes across clusters and pays long-haul links (paper Fig. 1)")
	return t, nil
}

// fig1Workload builds the clustered 4-producer catalog and query.
// Streams 0,1 share a stub domain; streams 2,3 share a distant one; the
// consumer sits in a third domain. Selectivities make the cross-cluster
// bushy plan {0,2|1,3} the rate-model optimum by a slim margin.
func fig1Workload(topo *topology.Topology, rng *rand.Rand) (*query.Catalog, query.Query, error) {
	nd := topo.NumStubDomains()
	if nd < 3 {
		return nil, query.Query{}, fmt.Errorf("exp: fig1 needs >= 3 stub domains, have %d", nd)
	}
	// Pick three distinct domains spread across the domain index space
	// (domains are grouped by transit node, so distant indices tend to be
	// distant in latency).
	a := rng.Intn(nd / 3)
	b := nd/3 + rng.Intn(nd/3)
	c := 2*nd/3 + rng.Intn(nd-2*nd/3)
	da, db, dc := topo.StubDomainMembers(a), topo.StubDomainMembers(b), topo.StubDomainMembers(c)

	stats, err := query.NewCatalog(1.0)
	if err != nil {
		return nil, query.Query{}, err
	}
	producers := []topology.NodeID{
		da[rng.Intn(len(da))], da[rng.Intn(len(da))],
		db[rng.Intn(len(db))], db[rng.Intn(len(db))],
	}
	for i, prod := range producers {
		if err := stats.AddStream(query.StreamID(i), prod, 100); err != nil {
			return nil, query.Query{}, err
		}
	}
	// Cross-cluster pairs slightly more selective: the rate model prefers
	// joining 0⋈2 and 1⋈3 first, which the network hates.
	if err := stats.SetPairSelectivity(0, 2, 0.95); err != nil {
		return nil, query.Query{}, err
	}
	if err := stats.SetPairSelectivity(1, 3, 0.95); err != nil {
		return nil, query.Query{}, err
	}
	q := query.Query{
		ID:       1,
		Consumer: dc[rng.Intn(len(dc))],
		Streams:  []query.StreamID{0, 1, 2, 3},
	}
	return stats, q, nil
}
