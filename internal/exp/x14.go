package exp

import (
	"math"
	"math/rand"
	"time"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/stream"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/workload"
)

// X14Params configures the shared-execution scenario.
type X14Params struct {
	Seed int64
	// StubNodes is the per-stub-domain node count; the default 21 gives
	// the 1024-node overlay.
	StubNodes int
	Streams   int
	// Groups is the number of shared subtrees: distinct stream pairs
	// whose join every query in the group computes (default 40).
	Groups int
	// PerGroup is the number of queries per group (default 5, giving
	// the 200-query workload): the first deploys the join, the rest
	// stack distinct aggregates on top and reuse it.
	PerGroup int
	// Radius is the §3.4 reuse pruning radius for the reuse-on pass
	// (default +Inf: full multi-query optimization).
	Radius float64
	// MeasureSimSeconds is the data-plane measurement window.
	MeasureSimSeconds float64
	TupleSizeKB       float64
}

// DefaultX14Params returns the full-scale 1024-node configuration.
func DefaultX14Params() X14Params {
	return X14Params{
		Seed:              29,
		StubNodes:         21,
		Streams:           16,
		Groups:            40,
		PerGroup:          5,
		Radius:            math.Inf(1),
		MeasureSimSeconds: 5,
		TupleSizeKB:       4,
	}
}

// x14Pass is one full build-optimize-deploy-execute-measure run of the
// workload at a fixed reuse radius.
type x14Pass struct {
	circuits    int
	reusedSvcs  int
	instances   int
	subscribers int
	usage       float64
	delivered   int
	sharedIn    int
	produced    int
	unrouted    int
	downDropped int
}

// x14Queries builds the overlapping-predicate workload: Groups distinct
// stream pairs, PerGroup queries each — the first a bare join (the
// eventual instance owner), the rest adding a per-query aggregate above
// the same join so the join subtree is the only shareable part.
func x14Queries(p X14Params, stubs []topology.NodeID, rng *rand.Rand) []query.Query {
	var pairs [][2]query.StreamID
	for a := 0; a < p.Streams; a++ {
		for b := a + 1; b < p.Streams; b++ {
			pairs = append(pairs, [2]query.StreamID{query.StreamID(a), query.StreamID(b)})
		}
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	if len(pairs) > p.Groups {
		pairs = pairs[:p.Groups]
	}
	var qs []query.Query
	for g, pair := range pairs {
		for k := 0; k < p.PerGroup; k++ {
			q := query.Query{
				ID:       query.QueryID(g*p.PerGroup + k + 1),
				Consumer: stubs[rng.Intn(len(stubs))],
				Streams:  []query.StreamID{pair[0], pair[1]},
			}
			if k > 0 {
				// Distinct fractions keep each consumer's aggregate
				// un-shareable; only the join below is common.
				q.AggregateFraction = 0.15 * float64(k)
			}
			qs = append(qs, q)
		}
	}
	return qs
}

func x14RunPass(p X14Params, qs []query.Query, radius float64) (x14Pass, error) {
	var out x14Pass

	topoCfg := topology.DefaultConfig()
	topoCfg.StubNodes = p.StubNodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return out, err
	}
	rng := rand.New(rand.NewSource(p.Seed * 3))
	sCfg := workload.DefaultStreamConfig()
	sCfg.NumStreams = p.Streams
	stats, err := workload.GenerateStats(topo, sCfg, rng)
	if err != nil {
		return out, err
	}
	envCfg := optimizer.DefaultEnvConfig(p.Seed)
	envCfg.UseDHT = false // oracle mapping: same answers, fast sequential deploys
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		return out, err
	}

	clk := simtime.NewVirtual()
	defer clk.Drive()()
	net := overlay.NewNetwork(topo, overlay.Config{TimeScale: time.Millisecond, InboxSize: 8192, Clock: clk})
	net.Start()
	defer net.Stop()
	ecfg := stream.DefaultEngineConfig()
	ecfg.Seed = p.Seed
	ecfg.TupleSizeKB = p.TupleSizeKB
	ecfg.Keyspace = 250
	engine := stream.NewEngine(net, topo, ecfg)
	defer engine.Close()

	reg := optimizer.NewRegistry()
	dep := optimizer.NewDeployment(env, reg)
	mq := optimizer.NewMultiQuery(env, reg, radius)
	mq.Mapper = placement.OracleMapper{Source: env}

	runs := make([]*stream.Running, 0, len(qs))
	for _, q := range qs {
		res, err := mq.Optimize(q)
		if err != nil {
			return out, err
		}
		if err := dep.Deploy(res.Circuit); err != nil {
			return out, err
		}
		run, err := engine.Deploy(res.Circuit)
		if err != nil {
			return out, err
		}
		runs = append(runs, run)
		out.reusedSvcs += res.ReusedServices
	}
	out.circuits = len(runs)
	st := engine.SharedStats()
	out.instances = st.Instances
	out.subscribers = st.Subscribers

	clk.Sleep(time.Duration(p.MeasureSimSeconds * float64(time.Second)))
	for _, run := range runs {
		run.HaltProducers()
	}
	clk.Sleep(time.Second)

	for _, run := range runs {
		m := run.Measure()
		out.usage += m.NetworkUsage
		out.delivered += m.TuplesOut
		out.sharedIn += run.SharedIn()
		out.produced += run.TuplesProduced()
	}
	out.unrouted = int(net.Metrics.Counter("msgs.unrouted").Value())
	out.downDropped = int(net.Metrics.Counter("msgs.down_dropped").Value())
	return out, nil
}

// X14 is the shared-execution scenario: an overlapping-predicate
// workload (Groups shared join subtrees × PerGroup queries on the
// 1024-node overlay) runs twice on the data plane — once with
// multi-query reuse enabled, once with it disabled — and the measured
// network usage of the executing circuits is compared. With reuse the
// engine instantiates each shared join exactly once and fans its output
// out to every subscriber, so measured usage must land strictly below
// the no-reuse run: the §3.4 savings realized in tuples on the wire,
// not just in control-plane accounting. Both passes are deterministic
// under the virtual clock.
func X14(p X14Params) (*Table, error) {
	if p.StubNodes <= 0 {
		p.StubNodes = 21
	}
	if p.Streams <= 0 {
		p.Streams = 16
	}
	if p.Groups <= 0 {
		p.Groups = 40
	}
	if p.PerGroup <= 0 {
		p.PerGroup = 5
	}
	if p.Radius == 0 {
		p.Radius = math.Inf(1)
	}
	if p.MeasureSimSeconds <= 0 {
		p.MeasureSimSeconds = 5
	}
	if p.TupleSizeKB <= 0 {
		p.TupleSizeKB = 4
	}
	wallStart := time.Now()

	// The query population is identical for both passes (its own RNG,
	// independent of either pass's env construction).
	topoCfg := topology.DefaultConfig()
	topoCfg.StubNodes = p.StubNodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, err
	}
	qs := x14Queries(p, topo.StubNodeIDs(), rand.New(rand.NewSource(p.Seed*7)))

	on, err := x14RunPass(p, qs, p.Radius)
	if err != nil {
		return nil, err
	}
	off, err := x14RunPass(p, qs, 0)
	if err != nil {
		return nil, err
	}

	t := NewTable("X14 — shared execution: data-plane usage with multi-query reuse on vs off",
		"mode", "circuits", "reused svcs", "shared insts", "subscribers", "usage KB·ms/s", "delivered", "shared-in", "loss")
	t.AddRow("reuse-on", on.circuits, on.reusedSvcs, on.instances, on.subscribers,
		on.usage, on.delivered, on.sharedIn, on.unrouted+on.downDropped)
	t.AddRow("reuse-off", off.circuits, off.reusedSvcs, off.instances, off.subscribers,
		off.usage, off.delivered, off.sharedIn, off.unrouted+off.downDropped)

	reduction := 0.0
	if off.usage > 0 {
		reduction = 100 * (1 - on.usage/off.usage)
	}
	t.AddNote("%d nodes, %d queries over %d shared subtrees; measured usage %.1f vs %.1f KB·ms/s — reuse saves %.1f%% on the wire",
		topo.NumNodes(), len(qs), p.Groups, on.usage, off.usage, reduction)
	t.AddNote("reuse-on executed %d shared instances once each for %d subscribers (produced %d tuples vs %d without reuse); loss counters %d/%d (must be 0)",
		on.instances, on.subscribers, on.produced, off.produced, on.unrouted+on.downDropped, off.unrouted+off.downDropped)
	t.AddNote("wall %v for both %0.f-simulated-second passes under the virtual clock",
		time.Since(wallStart).Round(time.Millisecond), p.MeasureSimSeconds)
	return t, nil
}
