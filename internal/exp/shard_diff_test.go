package exp

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/trace"
)

// The tentpole contract, pinned at scenario level: the sharded data
// plane is an execution strategy, not a semantics. For any shard count
// the full crash/repair scenario (X16) and the scale scenario (X17)
// must produce bit-identical artifacts — table rows, final placement
// fingerprint, and the serialized trace byte stream — to the
// single-queue run, regardless of goroutine interleaving inside the
// parallel windows.

// x16Artifacts runs CI-scale X16 on the given shard count and returns
// its deterministic artifacts: table rows, the placement-fingerprint
// note, and the trace JSONL bytes.
func x16Artifacts(t *testing.T, shards int) ([][]string, string, []byte) {
	t.Helper()
	tr := trace.New(simtime.NewVirtual())
	p := smallX16()
	p.Trace = tr
	p.DataShards = shards
	tb, err := X16(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return tb.Rows, fingerprintNote(t, tb), buf.Bytes()
}

// x17Artifacts is x16Artifacts for the CI-scale X17 configuration.
func x17Artifacts(t *testing.T, shards int) ([][]string, string, []byte) {
	t.Helper()
	tr := trace.New(simtime.NewVirtual())
	p := smallX17()
	p.Trace = tr
	p.DataShards = shards
	tb, err := X17(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return tb.Rows, fingerprintNote(t, tb), buf.Bytes()
}

// fingerprintNote extracts the placement-fingerprint hash from a
// scenario table (the shard count that follows it in the note is
// expected to differ across runs and is stripped).
func fingerprintNote(t *testing.T, tb *Table) string {
	t.Helper()
	for _, n := range tb.Notes {
		if strings.HasPrefix(n, "placement fingerprint ") {
			return strings.SplitN(n, ";", 2)[0]
		}
	}
	t.Fatal("table has no placement-fingerprint note")
	return ""
}

func diffArtifacts(t *testing.T, scenario string, shards int,
	baseRows [][]string, baseFP string, baseTrace []byte,
	rows [][]string, fp string, raw []byte) {
	t.Helper()
	if len(rows) != len(baseRows) {
		t.Fatalf("%s with %d data shards: %d rows vs %d single-queue", scenario, shards, len(rows), len(baseRows))
	}
	for r := range rows {
		for c := range rows[r] {
			if rows[r][c] != baseRows[r][c] {
				t.Errorf("%s with %d data shards diverges at row %d col %d: %q vs single-queue %q",
					scenario, shards, r, c, rows[r][c], baseRows[r][c])
			}
		}
	}
	if fp != baseFP {
		t.Errorf("%s with %d data shards: final placements diverge: %s vs %s", scenario, shards, fp, baseFP)
	}
	if !bytes.Equal(raw, baseTrace) {
		la := strings.Split(string(baseTrace), "\n")
		lb := strings.Split(string(raw), "\n")
		n := len(la)
		if len(lb) < n {
			n = len(lb)
		}
		for i := 0; i < n; i++ {
			if la[i] != lb[i] {
				t.Fatalf("%s with %d data shards: trace diverges at line %d:\n  single-queue: %s\n  sharded:      %s",
					scenario, shards, i+1, la[i], lb[i])
			}
		}
		t.Fatalf("%s with %d data shards: trace lengths diverge: %d vs %d lines", scenario, shards, len(lb), len(la))
	}
}

func TestX16ShardedBitIdentical(t *testing.T) {
	baseRows, baseFP, baseTrace := x16Artifacts(t, 1)
	if len(baseTrace) == 0 {
		t.Fatal("single-queue X16 produced no trace")
	}
	for _, shards := range []int{4, 16} {
		rows, fp, raw := x16Artifacts(t, shards)
		diffArtifacts(t, "X16", shards, baseRows, baseFP, baseTrace, rows, fp, raw)
	}
}

func TestX17ShardedBitIdentical(t *testing.T) {
	baseRows, baseFP, baseTrace := x17Artifacts(t, 1)
	if len(baseTrace) == 0 {
		t.Fatal("single-queue X17 produced no trace")
	}
	for _, shards := range []int{4, 16} {
		rows, fp, raw := x17Artifacts(t, shards)
		diffArtifacts(t, "X17", shards, baseRows, baseFP, baseTrace, rows, fp, raw)
	}
}

// TestX18Deterministic reruns the CI-scale X18 shape (the structure and
// 64-way sharding of the 100k-node scale point, shrunk to test time)
// and requires identical rows — the "deterministic reruns" criterion.
func TestX18Deterministic(t *testing.T) {
	small := func() X17Params {
		p := DefaultX18Params()
		p.StubsPerTransit = 8
		p.StubNodes = 8 // 64 + 8·8·8 = 576 nodes
		p.Streams = 32
		p.Queries = 2000
		p.EngineCircuits = 64
		p.TickerWarmRounds = 10
		return p
	}
	run := func() ([][]string, string) {
		tb, err := X18(small())
		if err != nil {
			t.Fatal(err)
		}
		return tb.Rows, fingerprintNote(t, tb)
	}
	rowsA, fpA := run()
	rowsB, fpB := run()
	if len(rowsA) == 0 {
		t.Fatal("X18 produced no rows")
	}
	if fpA != fpB {
		t.Fatalf("same-seed X18 placements diverged: %s vs %s", fpA, fpB)
	}
	for r := range rowsA {
		for c := range rowsA[r] {
			if rowsA[r][c] != rowsB[r][c] {
				t.Fatalf("same-seed X18 diverged at (%d,%d): %q vs %q", r, c, rowsA[r][c], rowsB[r][c])
			}
		}
	}
}
