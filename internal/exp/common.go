package exp

import (
	"math/rand"

	"github.com/hourglass/sbon/internal/topology"
)

// Scale selects experiment size: Full reproduces the paper's ~600-node
// setting; Small shrinks everything for fast test/CI runs without
// changing the experiment structure.
type Scale int

// Scales.
const (
	Full Scale = iota
	Small
)

// topoConfig returns the transit-stub configuration for a scale.
func topoConfig(s Scale) topology.Config {
	cfg := topology.DefaultConfig() // 592 nodes, the Figure 2 scale
	if s == Small {
		cfg.TransitDomains = 2
		cfg.TransitNodes = 2
		cfg.StubsPerTransit = 2
		cfg.StubNodes = 5 // 4 + 40 = 44 nodes
	}
	return cfg
}

// genTopo builds the scaled topology deterministically from the seed.
func genTopo(s Scale, seed int64) *topology.Topology {
	return topology.MustGenerate(topoConfig(s), rand.New(rand.NewSource(seed)))
}

// meanOf returns the arithmetic mean of xs (0 for empty).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
