package exp

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/topology"
)

// Scale selects experiment size: Full reproduces the paper's ~600-node
// setting; Small shrinks everything for fast test/CI runs without
// changing the experiment structure.
type Scale int

// Scales.
const (
	Full Scale = iota
	Small
)

// topoConfig returns the transit-stub configuration for a scale.
func topoConfig(s Scale) topology.Config {
	cfg := topology.DefaultConfig() // 592 nodes, the Figure 2 scale
	if s == Small {
		cfg.TransitDomains = 2
		cfg.TransitNodes = 2
		cfg.StubsPerTransit = 2
		cfg.StubNodes = 5 // 4 + 40 = 44 nodes
	}
	return cfg
}

// genTopo builds the scaled topology deterministically from the seed.
func genTopo(s Scale, seed int64) *topology.Topology {
	return topology.MustGenerate(topoConfig(s), rand.New(rand.NewSource(seed)))
}

// dataPlaneShards derives the sharded-clock inputs for a scenario: the
// optimizer's Hilbert-prefix regions as the lane map (so the traffic a
// region-local placement generates stays shard-local) and the minimum
// edge latency, scaled to the overlay TimeScale, as the conservative
// lookahead. Returns the rounded shard count alongside.
func dataPlaneShards(topo *topology.Topology, env *optimizer.Env, shards int, timeScale time.Duration) ([]int32, int, time.Duration, error) {
	k := optimizer.RoundShards(shards)
	laneOf, err := optimizer.NodeRegions(env, k)
	if err != nil {
		return nil, 0, 0, err
	}
	lookahead := time.Duration(topo.MinEdgeLatency() * float64(timeScale))
	if lookahead <= 0 {
		return nil, 0, 0, fmt.Errorf("exp: topology has no positive edge latency — no conservative lookahead exists")
	}
	return laneOf, k, lookahead, nil
}

// placementFingerprint hashes a deployment's final circuit table — every
// (query, service index, host) triple in sorted order — so two runs can
// be compared for placement-level bit-identity without dumping the
// table.
func placementFingerprint(dep *optimizer.Deployment) uint64 {
	type row struct {
		q    int
		s    int
		node int
	}
	var rows []row
	for id, c := range dep.Circuits() {
		for i, svc := range c.Services {
			rows = append(rows, row{int(id), i, int(svc.Node)})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].q != rows[j].q {
			return rows[i].q < rows[j].q
		}
		return rows[i].s < rows[j].s
	})
	h := fnv.New64a()
	for _, r := range rows {
		fmt.Fprintf(h, "%d/%d@%d;", r.q, r.s, r.node)
	}
	return h.Sum64()
}

// meanOf returns the arithmetic mean of xs (0 for empty).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
