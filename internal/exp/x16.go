package exp

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/hourglass/sbon/internal/adapt"
	"github.com/hourglass/sbon/internal/failure"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/stream"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
	"github.com/hourglass/sbon/internal/workload"
)

// X16Params configures the failure-recovery scenario.
type X16Params struct {
	Seed int64
	// StubNodes is the per-stub-domain node count; the default 21 gives
	// the 1024-node overlay.
	StubNodes int
	Streams   int
	Queries   int
	// CrashFraction of all nodes crash, staggered across the crash
	// window (default 0.05 — the 5% crash scenario). Victims are drawn
	// from non-endpoint nodes, half of them operator hosts, so every
	// run exercises actual circuit repair rather than only ambient
	// deaths.
	CrashFraction float64
	// DropProb is the ambient per-message loss every send rides
	// through, heartbeats included (default 0.01).
	DropProb float64
	// JitterMs adds uniform extra latency to delivered messages.
	JitterMs float64
	// HeartbeatSimMillis is the heartbeat period (default 200);
	// detection latency is bounded by DeadMissed+1 periods.
	HeartbeatSimMillis float64
	// RepairIntervalSimMillis paces the detect-repair-sweep loop
	// (default 500).
	RepairIntervalSimMillis float64
	// WarmupSimSeconds of fault-free execution precede the crash
	// window; CrashSpreadSimSeconds is the window's width; the repair
	// loop then runs RunSimSeconds total after warmup.
	WarmupSimSeconds      float64
	CrashSpreadSimSeconds float64
	RunSimSeconds         float64
	TupleSizeKB           float64
	// Trace, when set, records the run's structured events — fault
	// injections, detector verdicts, repair rounds, migrations, sampled
	// tuple hops. Nil (the default) traces nothing.
	Trace *trace.Tracer
	// DataShards executes the data plane on that many parallel
	// per-shard event queues (<= 1: the single-queue scheduler). Every
	// artifact — table rows, trace bytes, final placements — is defined
	// to be bit-identical across shard counts; only wall time changes.
	DataShards int
}

// DefaultX16Params returns the full-scale 1024-node configuration.
func DefaultX16Params() X16Params {
	return X16Params{
		Seed:                    37,
		StubNodes:               21,
		Streams:                 16,
		Queries:                 120,
		CrashFraction:           0.05,
		DropProb:                0.01,
		JitterMs:                2,
		HeartbeatSimMillis:      200,
		RepairIntervalSimMillis: 500,
		WarmupSimSeconds:        4,
		CrashSpreadSimSeconds:   4,
		RunSimSeconds:           8,
		TupleSizeKB:             4,
	}
}

// X16 is the unplanned-failure scenario end to end: ~120 circuits
// execute on the 1024-node overlay under 1% ambient message loss while
// 5% of the nodes crash with no warning, staggered across a window.
// Heartbeats feed the failure detector; every repair interval the
// coordinator consumes its events, cancels doomed circuits, re-places
// every service stranded on a confirmed-dead node via the evacuation
// sweep (live nodes only), re-instantiates the lost operators fresh,
// and then runs one incremental adaptation sweep — zero manual
// Evacuate calls anywhere. The experiment reports detection latency
// (crash → Died verdict), repair lag (crash → routes flipped), the
// measured tuple loss (crash recovery is bounded-loss by design: the
// bound is the metric, counted by the loss counters, never silent),
// and post-repair vs pre-crash network usage. The whole run is
// virtual-clock deterministic: same seed, bit-identical table.
func X16(p X16Params) (*Table, error) {
	if p.StubNodes <= 0 {
		p.StubNodes = 21
	}
	if p.Streams <= 0 {
		p.Streams = 16
	}
	if p.Queries <= 0 {
		p.Queries = 120
	}
	if p.CrashFraction <= 0 {
		p.CrashFraction = 0.05
	}
	if p.DropProb <= 0 {
		p.DropProb = 0.01
	}
	if p.HeartbeatSimMillis <= 0 {
		p.HeartbeatSimMillis = 200
	}
	if p.RepairIntervalSimMillis <= 0 {
		p.RepairIntervalSimMillis = 500
	}
	if p.WarmupSimSeconds <= 0 {
		p.WarmupSimSeconds = 4
	}
	if p.CrashSpreadSimSeconds <= 0 {
		p.CrashSpreadSimSeconds = 4
	}
	if p.RunSimSeconds <= 0 {
		p.RunSimSeconds = 8
	}
	if p.TupleSizeKB <= 0 {
		p.TupleSizeKB = 4
	}
	wallStart := time.Now()

	topoCfg := topology.DefaultConfig()
	topoCfg.StubNodes = p.StubNodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed * 3))
	sCfg := workload.DefaultStreamConfig()
	sCfg.NumStreams = p.Streams
	stats, err := workload.GenerateStats(topo, sCfg, rng)
	if err != nil {
		return nil, err
	}
	qCfg := workload.DefaultQueryConfig()
	qCfg.NumQueries = p.Queries
	qCfg.StreamsPerQuery = [2]int{1, 2}
	qCfg.AggregateProb = 0
	qs, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
	if err != nil {
		return nil, err
	}
	envCfg := optimizer.DefaultEnvConfig(p.Seed)
	envCfg.UseDHT = false // oracle mapping: same answers, fast repair sweeps
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		return nil, err
	}
	results, err := optimizer.OptimizeBatch(env, qs, optimizer.BatchOptions{})
	if err != nil {
		return nil, err
	}

	clk := simtime.NewVirtual()
	defer clk.Drive()()
	p.Trace.Rebase(clk)
	netCfg := overlay.Config{TimeScale: time.Millisecond, InboxSize: 8192, Clock: clk}
	if p.DataShards > 1 {
		laneOf, k, lookahead, err := dataPlaneShards(topo, env, p.DataShards, netCfg.TimeScale)
		if err != nil {
			return nil, err
		}
		clk.ShardLanes(laneOf, k, lookahead)
		netCfg.DataShards = k
		netCfg.ShardOf = laneOf
	}
	net := overlay.NewNetwork(topo, netCfg)
	net.SetTracer(p.Trace)
	net.Start()
	defer net.Stop()
	ecfg := stream.DefaultEngineConfig()
	ecfg.Seed = p.Seed
	ecfg.TupleSizeKB = p.TupleSizeKB
	ecfg.Keyspace = 250
	ecfg.Tracer = p.Trace
	engine := stream.NewEngine(net, topo, ecfg)
	defer engine.Close()

	dep := optimizer.NewDeployment(env, nil)
	truth := optimizer.TrueLatency{Topo: topo}
	runs := make([]*stream.Running, 0, len(results))
	for i := range results {
		c := results[i].Circuit
		if err := dep.Deploy(c); err != nil {
			return nil, err
		}
		run, err := engine.Deploy(c)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}

	// Victim selection: CrashFraction of all nodes, none of them
	// pinned endpoints (a dead producer or consumer makes its circuit
	// unrepairable by definition — that path is unit-tested; this
	// scenario measures repair). Half the victims come from operator
	// hosts so affected circuits are guaranteed, the rest are ambient.
	endpoint := map[topology.NodeID]bool{}
	opHost := map[topology.NodeID]bool{}
	for i := range results {
		for _, s := range results[i].Circuit.Services {
			if s.Pinned {
				endpoint[s.Node] = true
			} else {
				opHost[s.Node] = true
			}
		}
	}
	var opHosts, ambient []topology.NodeID
	for i := 0; i < topo.NumNodes(); i++ {
		n := topology.NodeID(i)
		switch {
		case endpoint[n]:
		case opHost[n]:
			opHosts = append(opHosts, n)
		default:
			ambient = append(ambient, n)
		}
	}
	vrng := rand.New(rand.NewSource(p.Seed * 13))
	vrng.Shuffle(len(opHosts), func(i, j int) { opHosts[i], opHosts[j] = opHosts[j], opHosts[i] })
	vrng.Shuffle(len(ambient), func(i, j int) { ambient[i], ambient[j] = ambient[j], ambient[i] })
	crashCount := int(p.CrashFraction*float64(topo.NumNodes()) + 0.5)
	if crashCount < 1 {
		crashCount = 1
	}
	fromOps := crashCount / 2
	if fromOps < 1 {
		fromOps = 1
	}
	if fromOps > len(opHosts) {
		fromOps = len(opHosts)
	}
	victims := append([]topology.NodeID{}, opHosts[:fromOps]...)
	for _, n := range ambient {
		if len(victims) >= crashCount {
			break
		}
		victims = append(victims, n)
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("x16: no crashable non-endpoint nodes")
	}

	warmup := time.Duration(p.WarmupSimSeconds * float64(time.Second))
	spread := time.Duration(p.CrashSpreadSimSeconds * float64(time.Second))
	crashes := make([]overlay.NodeCrash, len(victims))
	for i, n := range victims {
		at := warmup + 500*time.Millisecond
		if len(victims) > 1 {
			at += time.Duration(int64(spread) * int64(i) / int64(len(victims)-1))
		}
		crashes[i] = overlay.NodeCrash{Node: n, At: at}
	}
	fi := net.InstallFaults(overlay.FaultPlan{
		Seed:     p.Seed,
		DropProb: p.DropProb,
		JitterMs: p.JitterMs,
		Crashes:  crashes,
	})
	defer fi.Stop()

	beat := time.Duration(p.HeartbeatSimMillis * float64(time.Millisecond))
	hb := net.StartHeartbeatsOpts(beat, 0.05, overlay.HeartbeatOpts{SkipDownTargets: true})
	dcfg := failure.DefaultConfig(beat)
	dcfg.Tracer = p.Trace
	det := failure.New(net, dcfg)
	defer func() { det.Stop(); hb.Stop() }()

	co := &adapt.Coordinator{
		Dep:       dep,
		Engine:    engine,
		Clock:     clk,
		Mapper:    placement.OracleMapper{Source: env},
		Model:     truth,
		Threshold: 0.3,
		TicketTTL: 5 * time.Second,
		Tracer:    p.Trace,
	}

	t0 := clk.Now()
	clk.Sleep(warmup)
	usageBefore := dep.TotalUsage(truth)
	producedAtCrash := 0
	for _, run := range runs {
		producedAtCrash += run.TuplesProduced()
	}

	// The detect-repair-adapt loop (RunWithRepair's body, inlined for
	// per-round metric visibility).
	interval := time.Duration(p.RepairIntervalSimMillis * float64(time.Millisecond))
	rounds := int(p.RunSimSeconds*1000/p.RepairIntervalSimMillis + 0.5)
	t := NewTable("X16 — crash detection and automatic circuit repair under ambient loss",
		"round", "sim-ms", "died", "planned", "repaired", "zombie", "aborted", "buffered lost", "state lost KB")
	var detections, outages []time.Duration
	var totalRep adapt.RepairStats
	var sweepMigrated int
	for round := 1; round <= rounds; round++ {
		clk.Sleep(interval)
		events := det.TakeEvents()
		var diedNow []topology.NodeID
		for _, ev := range events {
			if ev.Kind == failure.Died {
				if at, ok := fi.CrashTime(ev.Node); ok {
					detections = append(detections, ev.At.Sub(at))
				}
				diedNow = append(diedNow, ev.Node)
			}
		}
		rep, err := co.HandleFailures(events, nil)
		if err != nil {
			return nil, err
		}
		now := clk.Now()
		for _, n := range diedNow {
			if at, ok := fi.CrashTime(n); ok {
				outages = append(outages, now.Sub(at))
			}
		}
		totalRep.DeadNodes += rep.DeadNodes
		totalRep.CancelledCircuits += rep.CancelledCircuits
		totalRep.Planned += rep.Planned
		totalRep.Repaired += rep.Repaired
		totalRep.DataPlane += rep.DataPlane
		totalRep.Adopted += rep.Adopted
		totalRep.ZombieRepaired += rep.ZombieRepaired
		totalRep.Unmovable += rep.Unmovable
		totalRep.Aborted += rep.Aborted
		totalRep.BufferedLost += rep.BufferedLost
		totalRep.StateLostKB += rep.StateLostKB
		st, err := co.SweepIncremental(nil)
		if err != nil {
			return nil, err
		}
		sweepMigrated += st.Migrated
		if len(diedNow) > 0 || rep.Repaired > 0 || rep.Aborted > 0 {
			t.AddRow(round, net.SimMillis(now.Sub(t0)), len(diedNow), rep.Planned,
				rep.Repaired, rep.ZombieRepaired, rep.Aborted, rep.BufferedLost, rep.StateLostKB)
		}
	}

	// Hard invariants, not statistics.
	if totalRep.DeadNodes != len(victims) {
		return nil, fmt.Errorf("x16: detector confirmed %d deaths, crashed %d nodes (false positives or missed crashes)",
			totalRep.DeadNodes, len(victims))
	}
	if totalRep.CancelledCircuits != 0 {
		return nil, fmt.Errorf("x16: %d circuits cancelled despite endpoint-free victims", totalRep.CancelledCircuits)
	}
	crashed := map[topology.NodeID]bool{}
	for _, n := range victims {
		crashed[n] = true
	}
	for id, c := range dep.Circuits() {
		for i, s := range c.Services {
			if crashed[s.Node] {
				return nil, fmt.Errorf("x16: q%d service %d still placed on crashed node %d", id, i, s.Node)
			}
		}
	}

	// Drain in-flight handoffs, then quiesce and close the books.
	clk.Sleep(2 * time.Second)
	usageAfter := dep.TotalUsage(truth)
	for _, run := range runs {
		run.HaltProducers()
	}
	clk.Sleep(time.Second)
	var produced, delivered int
	for _, run := range runs {
		produced += run.TuplesProduced()
		delivered += run.Measure().TuplesOut
	}
	faultDropped := int(net.Metrics.Counter("faults.dropped").Value())
	hbDropped := int(net.Metrics.Counter("faults.hb_dropped").Value())
	downDropped := int(net.Metrics.Counter("msgs.down_dropped").Value())
	unrouted := int(net.Metrics.Counter("msgs.unrouted").Value())
	bufferedLost := int(net.Metrics.Counter("repair.buffered_lost").Value())
	lost := faultDropped + downDropped + unrouted + bufferedLost
	lossPct := 0.0
	if produced > 0 {
		lossPct = 100 * float64(lost) / float64(produced)
	}
	if lost == 0 {
		return nil, fmt.Errorf("x16: crashes plus %g%% loss dropped nothing — the scenario is vacuous", 100*p.DropProb)
	}

	simMs := func(ds []time.Duration) (avg, max float64) {
		if len(ds) == 0 {
			return 0, 0
		}
		for _, d := range ds {
			ms := net.SimMillis(d)
			avg += ms
			if ms > max {
				max = ms
			}
		}
		return avg / float64(len(ds)), max
	}
	detAvg, detMax := simMs(detections)
	outAvg, outMax := simMs(outages)

	t.AddNote("%d nodes, %d circuits; crashed %d nodes (%.1f%%) under %.0f%% ambient loss — %d services repaired (%d zombie), %d sweeps-migrated, zero manual Evacuate calls",
		topo.NumNodes(), len(runs), len(victims), 100*float64(len(victims))/float64(topo.NumNodes()),
		100*p.DropProb, totalRep.Repaired, totalRep.ZombieRepaired, sweepMigrated)
	t.AddNote("detection latency avg %.0f / max %.0f sim-ms; crash-to-repair avg %.0f / max %.0f sim-ms (beat %.0f ms, repair interval %.0f ms)",
		detAvg, detMax, outAvg, outMax, p.HeartbeatSimMillis, p.RepairIntervalSimMillis)
	t.AddNote("bounded loss: %d tuples+messages (%.2f%% of %d produced) = %d injector-dropped + %d at-corpse + %d unrouted + %d handoff-buffered; %d heartbeats dropped; operator state lost %.0f KB",
		lost, lossPct, produced, faultDropped, downDropped, unrouted, bufferedLost, hbDropped, totalRep.StateLostKB)
	t.AddNote("network usage %.0f KB·ms/s pre-crash vs %.0f post-repair (%.2fx); delivered %d tuples",
		usageBefore, usageAfter, usageAfter/usageBefore, delivered)
	t.AddNote("placement fingerprint %016x; data plane on %d event queue(s)",
		placementFingerprint(dep), net.DataShards())
	t.AddNote("wall %v for %.0f simulated seconds (warmup %.0f + repair loop %.0f + drain 3)",
		time.Since(wallStart).Round(time.Millisecond), p.WarmupSimSeconds+p.RunSimSeconds+3,
		p.WarmupSimSeconds, p.RunSimSeconds)
	_ = producedAtCrash
	return t, nil
}
