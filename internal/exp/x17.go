package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/hourglass/sbon/internal/adapt"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/stream"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
	"github.com/hourglass/sbon/internal/vivaldi"
	"github.com/hourglass/sbon/internal/workload"
)

// X17Params configures the 16k-node scale scenario.
type X17Params struct {
	Seed int64
	// Topology shape; the defaults give 16 transit + 16·64·16 stub =
	// 16400 nodes.
	TransitDomains  int
	TransitNodes    int
	StubsPerTransit int
	StubNodes       int

	// Streams is the published stream population.
	Streams int
	// Queries is the batch optimized through the sharded path.
	Queries int
	// Shards is the cost-space region count for OptimizeBatchSharded.
	Shards int
	// DataShards executes the data plane on that many parallel
	// per-shard event queues keyed to the same Hilbert-prefix regions
	// (<= 1: the single-queue scheduler). Bit-identical artifacts by
	// construction; only wall time changes.
	DataShards int
	// EngineCircuits is how many optimized circuits additionally execute
	// on the data plane (all of them would be redundant for the
	// scheduling claim and slow; the engine subset plus full-population
	// heartbeats is what stresses the event kernel).
	EngineCircuits int

	// HeartbeatEvery enables full-population liveness traffic (0
	// disables — but heartbeats-on is the point of the scenario).
	HeartbeatEvery time.Duration

	// TickerInterval is the Vivaldi gossip-round period; TickerSamples
	// the peers each node measures per round; TickerWarmRounds the
	// rounds run before the environment is built from the coordinates.
	TickerInterval   time.Duration
	TickerSamples    int
	TickerWarmRounds int

	// Rounds is the number of drift → coordinate-sync → adapt rounds.
	Rounds int
	// DriftFraction of nodes get fresh background loads each round.
	DriftFraction float64
	// Budget caps migrations per adaptation round.
	Budget int
	// IntervalSimSeconds of dataflow between rounds.
	IntervalSimSeconds float64
	WarmupSimSeconds   float64
	TupleSizeKB        float64

	// Trace, when set, records the run's structured events (sampled
	// tuple hops, migration spans, heartbeat drops). Nil traces nothing.
	Trace *trace.Tracer
}

// DefaultX17Params returns the full-scale configuration: 16400 overlay
// nodes, 100k queries through 16 shards, heartbeats on.
func DefaultX17Params() X17Params {
	return X17Params{
		Seed:               29,
		TransitDomains:     4,
		TransitNodes:       4,
		StubsPerTransit:    64,
		StubNodes:          16,
		Streams:            64,
		Queries:            100_000,
		Shards:             16,
		DataShards:         16,
		EngineCircuits:     512,
		HeartbeatEvery:     500 * time.Millisecond,
		TickerInterval:     200 * time.Millisecond,
		TickerSamples:      4,
		TickerWarmRounds:   40,
		Rounds:             3,
		DriftFraction:      0.02,
		Budget:             32,
		IntervalSimSeconds: 1,
		WarmupSimSeconds:   2,
		TupleSizeKB:        4,
	}
}

// X17 is the 100k-overlay-scale scenario this PR's two kernels exist
// for: a ≥16k-node transit-stub overlay whose latencies are answered
// from the factored sparse decomposition (the dense matrix would be
// ~2 GB), whose Vivaldi coordinates are maintained by a background
// gossip Ticker on the virtual clock (never a batch embedding), and
// whose ≥100k-query population is optimized through the sharded batch
// path. A subset of circuits then executes on the data plane with
// full-population heartbeats — hundreds of thousands of pending timer
// events, the load the hierarchical timer wheel makes O(1) — while
// load drifts and the adaptation layer migrates services against
// periodically synced coordinates.
//
// Reported per round: coordinates synced, mean coordinate staleness
// at sync (how far the ticker's embedding had drifted from the
// optimizer's view, the cost of periodic rather than continuous
// sync), migrations planned/executed, and migration oscillations
// (A→B→A returns — the thrash metric periodic sync risks). The same
// numbers are recorded on the overlay metrics registry as
// coord.syncs / coord.staleness_ms / adapt.oscillations.
func X17(p X17Params) (*Table, error) {
	if p.TransitDomains <= 0 {
		p.TransitDomains = 4
	}
	if p.TransitNodes <= 0 {
		p.TransitNodes = 4
	}
	if p.StubsPerTransit <= 0 {
		p.StubsPerTransit = 64
	}
	if p.StubNodes <= 0 {
		p.StubNodes = 16
	}
	if p.Streams <= 0 {
		p.Streams = 64
	}
	if p.Queries <= 0 {
		p.Queries = 100_000
	}
	if p.Shards <= 0 {
		p.Shards = 16
	}
	if p.EngineCircuits <= 0 {
		p.EngineCircuits = 512
	}
	if p.TickerInterval <= 0 {
		p.TickerInterval = 200 * time.Millisecond
	}
	if p.TickerSamples <= 0 {
		p.TickerSamples = 4
	}
	if p.TickerWarmRounds <= 0 {
		p.TickerWarmRounds = 40
	}
	if p.Rounds <= 0 {
		p.Rounds = 3
	}
	if p.DriftFraction <= 0 {
		p.DriftFraction = 0.02
	}
	if p.Budget <= 0 {
		p.Budget = 32
	}
	if p.IntervalSimSeconds <= 0 {
		p.IntervalSimSeconds = 1
	}
	if p.WarmupSimSeconds <= 0 {
		p.WarmupSimSeconds = 2
	}
	if p.TupleSizeKB <= 0 {
		p.TupleSizeKB = 4
	}
	wallStart := time.Now()

	topoCfg := topology.DefaultConfig()
	topoCfg.TransitDomains = p.TransitDomains
	topoCfg.TransitNodes = p.TransitNodes
	topoCfg.StubsPerTransit = p.StubsPerTransit
	topoCfg.StubNodes = p.StubNodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, err
	}
	// Sparse latency is mandatory at this scale: O(1) lookups, no O(n²)
	// matrix — and overlay.NewNetwork skips the dense force because of it.
	if err := topo.EnableSparseLatency(); err != nil {
		return nil, err
	}
	n := topo.NumNodes()

	rng := rand.New(rand.NewSource(p.Seed * 3))
	sCfg := workload.DefaultStreamConfig()
	sCfg.NumStreams = p.Streams
	stats, err := workload.GenerateStats(topo, sCfg, rng)
	if err != nil {
		return nil, err
	}
	qCfg := workload.DefaultQueryConfig()
	qCfg.NumQueries = p.Queries
	qCfg.StreamsPerQuery = [2]int{1, 2}
	qCfg.AggregateProb = 0
	qs, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
	if err != nil {
		return nil, err
	}

	// Everything below runs on one virtual clock: Vivaldi gossip rounds,
	// tuple deliveries, heartbeats, migration phases.
	clk := simtime.NewVirtual()
	defer clk.Drive()()

	// Background coordinate maintenance: a deployed overlay measures a
	// few peers per round, it never batch-embeds a latency matrix.
	ticker, err := vivaldi.NewTicker(n, func(i, j int) float64 {
		return topo.Latency(topology.NodeID(i), topology.NodeID(j))
	}, vivaldi.DefaultConfig(), p.TickerSamples, p.TickerInterval, clk, rand.New(rand.NewSource(p.Seed*5)))
	if err != nil {
		return nil, err
	}
	ticker.Start()
	defer ticker.Stop()
	clk.Sleep(time.Duration(p.TickerWarmRounds) * p.TickerInterval)

	envCfg := optimizer.DefaultEnvConfig(p.Seed)
	envCfg.UseDHT = false // oracle mapping: building a 16k-peer ring adds nothing here
	env, err := optimizer.NewEnvFromCoords(topo, stats, envCfg, ticker.Embedding().Coords)
	if err != nil {
		return nil, err
	}

	// The sharded batch: the scenario's optimization throughput claim.
	optStart := time.Now()
	results, shardStats, err := optimizer.OptimizeBatchSharded(env, qs, optimizer.ShardedBatchOptions{Shards: p.Shards})
	if err != nil {
		return nil, err
	}
	optWall := time.Since(optStart)
	homeRouted := 0
	for _, c := range shardStats.Routed {
		homeRouted += c
	}

	// The data plane shards only now that the environment exists: the
	// lane map is the same region assignment the batch above routed by,
	// and the only events scheduled so far are the ticker's
	// control-domain rounds, which ShardLanes leaves untouched.
	netCfg := overlay.Config{TimeScale: time.Millisecond, InboxSize: 8192, Clock: clk}
	if p.DataShards > 1 {
		laneOf, k, lookahead, err := dataPlaneShards(topo, env, p.DataShards, netCfg.TimeScale)
		if err != nil {
			return nil, err
		}
		clk.ShardLanes(laneOf, k, lookahead)
		netCfg.DataShards = k
		netCfg.ShardOf = laneOf
	}
	p.Trace.Rebase(clk)
	net := overlay.NewNetwork(topo, netCfg)
	net.SetTracer(p.Trace)
	net.Start()
	defer net.Stop()
	ecfg := stream.DefaultEngineConfig()
	ecfg.Seed = p.Seed
	ecfg.TupleSizeKB = p.TupleSizeKB
	ecfg.Keyspace = 250
	ecfg.Tracer = p.Trace
	engine := stream.NewEngine(net, topo, ecfg)
	defer engine.Close()

	dep := optimizer.NewDeployment(env, nil)
	truth := optimizer.TrueLatency{Topo: topo}
	nRun := p.EngineCircuits
	if nRun > len(results) {
		nRun = len(results)
	}
	runs := make([]*stream.Running, 0, nRun)
	for i := 0; i < nRun; i++ {
		c := results[i].Circuit
		if err := dep.Deploy(c); err != nil {
			return nil, err
		}
		run, err := engine.Deploy(c)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	var hb *overlay.Heartbeats
	if p.HeartbeatEvery > 0 {
		hb = net.StartHeartbeats(p.HeartbeatEvery, 0.05)
	}
	clk.Sleep(time.Duration(p.WarmupSimSeconds * float64(time.Second)))
	pendingPeak := clk.PendingEvents()

	co := &adapt.Coordinator{
		Dep:       dep,
		Engine:    engine,
		Clock:     clk,
		Mapper:    placement.OracleMapper{Source: env},
		Model:     truth,
		Threshold: 0.01,
		Tracer:    p.Trace,
	}
	driftRng := rand.New(rand.NewSource(p.Seed * 11))
	churn := workload.Churn{LoadFraction: p.DriftFraction, LoadMax: 0.9}

	staleSeries := net.Metrics.Series("coord.staleness_ms")
	syncCounter := net.Metrics.Counter("coord.syncs")
	movedCounter := net.Metrics.Counter("coord.synced_nodes")
	oscCounter := net.Metrics.Counter("adapt.oscillations")

	t := NewTable("X17 — 16k-node overlay: sharded optimization, ticker coordinates, timer-wheel event kernel",
		"round", "synced", "staleness ms", "planned", "migrated", "oscillations", "usage before", "usage after", "pending events")
	// lastFrom remembers where each (query, service) sat before its
	// latest migration; a move back onto that node is an oscillation.
	lastFrom := make(map[string]topology.NodeID)
	totalOsc, totalMigrations := 0, 0
	for round := 1; round <= p.Rounds; round++ {
		workload.ApplyChurn(topo, env, churn, driftRng)

		// Periodic coordinate sync from the ticker: measure how stale the
		// optimizer's view had become (mean displacement in coordinate
		// space, ms by construction) before adopting the fresh embedding.
		fresh := ticker.Embedding().Coords
		var displacement float64
		for i, c := range fresh {
			displacement += env.Coord(topology.NodeID(i)).Distance(c)
		}
		staleness := displacement / float64(n)
		synced, err := env.SetCoordinates(fresh)
		if err != nil {
			return nil, err
		}
		syncCounter.Inc()
		movedCounter.Add(float64(synced))
		staleSeries.Record(float64(clk.Now().UnixNano())/1e6, staleness)

		before := dep.TotalUsage(truth)
		plan, err := co.Plan()
		if err != nil {
			return nil, err
		}
		moves := plan.Moves[:0:0]
		for _, m := range plan.Moves {
			if m.UsageGain > 1e-9 {
				moves = append(moves, m)
			}
		}
		sort.SliceStable(moves, func(i, j int) bool { return moves[i].UsageGain > moves[j].UsageGain })
		if len(moves) > p.Budget {
			moves = moves[:p.Budget]
		}
		osc := 0
		for _, m := range moves {
			key := fmt.Sprintf("%d/%d", m.Query, m.Service)
			if prev, ok := lastFrom[key]; ok && prev == m.To {
				osc++
			}
			lastFrom[key] = m.From
		}
		totalOsc += osc
		oscCounter.Add(float64(osc))

		st, err := co.Execute(optimizer.MigrationPlan{Moves: moves, ServicesEvaluated: plan.ServicesEvaluated}, nil)
		if err != nil {
			return nil, err
		}
		totalMigrations += st.Migrated
		clk.Sleep(time.Duration(p.IntervalSimSeconds * float64(time.Second)))
		if pe := clk.PendingEvents(); pe > pendingPeak {
			pendingPeak = pe
		}
		after := dep.TotalUsage(truth)
		t.AddRow(round, synced, staleness, st.Planned, st.Migrated, osc, before, after, clk.PendingEvents())
	}

	// Quiesce and close the loss accounting.
	for _, run := range runs {
		run.HaltProducers()
	}
	clk.Sleep(time.Second)
	if hb != nil {
		hb.Stop()
	}
	var produced, delivered int
	for _, run := range runs {
		produced += run.TuplesProduced()
		delivered += run.Measure().TuplesOut
	}
	beats := net.Metrics.Counter("hb.recv").Value()
	unrouted := int(net.Metrics.Counter("msgs.unrouted").Value())
	wall := time.Since(wallStart)

	t.AddNote("%d nodes (%d stub domains, sparse latency — no dense matrix), %d streams, %d queries optimized",
		n, topo.NumStubDomains(), p.Streams, len(results))
	t.AddNote("sharded batch: %d shards, %d home-routed (%.1f%%), %d fallback; %.0f queries/s on this host (%v; pools are independent — throughput scales with cores up to the shard count)",
		shardStats.Shards, homeRouted, 100*float64(homeRouted)/float64(len(qs)), shardStats.Fallback,
		float64(len(qs))/optWall.Seconds(), optWall.Round(time.Millisecond))
	t.AddNote("ticker coordinates: %d gossip rounds total, embedding median rel err %.3f; %d periodic syncs, %d oscillations out of %d migrations",
		ticker.Rounds(), env.EmbeddingQuality.MedianRelErr, p.Rounds, totalOsc, totalMigrations)
	t.AddNote("event kernel: peak %d pending events; %d circuits executing, %.0f heartbeats delivered; produced %d tuples, delivered %d, unrouted %d",
		pendingPeak, len(runs), beats, produced, delivered, unrouted)
	t.AddNote("placement fingerprint %016x; data plane on %d event queue(s)",
		placementFingerprint(dep), net.DataShards())
	t.AddNote("wall %v end to end under virtual time", wall.Round(time.Millisecond))
	return t, nil
}
