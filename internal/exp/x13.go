package exp

import (
	"math/rand"
	"sort"
	"time"

	"github.com/hourglass/sbon/internal/adapt"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/stream"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/workload"
)

// X13Params configures the periodic-adaptation scenario.
type X13Params struct {
	Seed int64
	// StubNodes is the per-stub-domain node count; the default 21 gives
	// the 1024-node overlay.
	StubNodes int
	Streams   int
	Queries   int
	// Sweeps is the number of adaptation rounds (default 4).
	Sweeps int
	// Budget caps migrations per sweep so the adaptation spreads across
	// rounds instead of thrashing in one.
	Budget int
	// DriftFraction of nodes get fresh background loads before every
	// sweep — the "drifting services" dynamic of the paper, §3.3.
	DriftFraction float64
	// IntervalSimSeconds of dataflow run between sweeps.
	IntervalSimSeconds float64
	WarmupSimSeconds   float64
	TupleSizeKB        float64
}

// DefaultX13Params returns the full-scale 1024-node configuration.
func DefaultX13Params() X13Params {
	return X13Params{
		Seed:               23,
		StubNodes:          21,
		Streams:            16,
		Queries:            120,
		Sweeps:             4,
		Budget:             16,
		DriftFraction:      0.1,
		IntervalSimSeconds: 2,
		WarmupSimSeconds:   4,
		TupleSizeKB:        4,
	}
}

// X13 is the continuous-adaptation scenario at scale: a 1024-node
// overlay executes ~120 optimized circuits under virtual time while
// background load drifts; every interval the adaptation layer sweeps,
// selects the migrations with the highest incident-usage gain (the
// paper's network-usage metric, measured against real link latencies —
// a re-optimizing node can measure RTTs to its circuit neighbors
// directly), and walks them through the live two-phase handoff. The
// reported trajectory of total network usage must decrease across
// sweeps with zero tuple loss — the paper's central "continuous
// optimization" claim exercised end to end on running circuits.
func X13(p X13Params) (*Table, error) {
	if p.StubNodes <= 0 {
		p.StubNodes = 21
	}
	if p.Streams <= 0 {
		p.Streams = 16
	}
	if p.Queries <= 0 {
		p.Queries = 120
	}
	if p.Sweeps <= 0 {
		p.Sweeps = 4
	}
	if p.Budget <= 0 {
		p.Budget = 16
	}
	if p.DriftFraction <= 0 {
		p.DriftFraction = 0.1
	}
	if p.IntervalSimSeconds <= 0 {
		p.IntervalSimSeconds = 2
	}
	if p.WarmupSimSeconds <= 0 {
		p.WarmupSimSeconds = 4
	}
	if p.TupleSizeKB <= 0 {
		p.TupleSizeKB = 4
	}
	wallStart := time.Now()

	topoCfg := topology.DefaultConfig()
	topoCfg.StubNodes = p.StubNodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed * 3))
	sCfg := workload.DefaultStreamConfig()
	sCfg.NumStreams = p.Streams
	stats, err := workload.GenerateStats(topo, sCfg, rng)
	if err != nil {
		return nil, err
	}
	qCfg := workload.DefaultQueryConfig()
	qCfg.NumQueries = p.Queries
	qCfg.StreamsPerQuery = [2]int{1, 2}
	qCfg.AggregateProb = 0
	qs, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
	if err != nil {
		return nil, err
	}
	envCfg := optimizer.DefaultEnvConfig(p.Seed)
	envCfg.UseDHT = false // oracle mapping: same answers, fast drift sweeps
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		return nil, err
	}
	results, err := optimizer.OptimizeBatch(env, qs, optimizer.BatchOptions{})
	if err != nil {
		return nil, err
	}

	clk := simtime.NewVirtual()
	defer clk.Drive()()
	net := overlay.NewNetwork(topo, overlay.Config{TimeScale: time.Millisecond, InboxSize: 8192, Clock: clk})
	net.Start()
	defer net.Stop()
	ecfg := stream.DefaultEngineConfig()
	ecfg.Seed = p.Seed
	ecfg.TupleSizeKB = p.TupleSizeKB
	ecfg.Keyspace = 250
	engine := stream.NewEngine(net, topo, ecfg)
	defer engine.Close()

	dep := optimizer.NewDeployment(env, nil)
	truth := optimizer.TrueLatency{Topo: topo}
	runs := make([]*stream.Running, 0, len(results))
	for i := range results {
		c := results[i].Circuit
		if err := dep.Deploy(c); err != nil {
			return nil, err
		}
		run, err := engine.Deploy(c)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	clk.Sleep(time.Duration(p.WarmupSimSeconds * float64(time.Second)))

	co := &adapt.Coordinator{
		Dep:    dep,
		Engine: engine,
		Clock:  clk,
		Mapper: placement.OracleMapper{Source: env},
		// Real measured latencies for the local re-optimization
		// criterion (precedent: X9's rewriting also re-optimizes
		// against truth).
		Model:     truth,
		Threshold: 0.01,
	}
	driftRng := rand.New(rand.NewSource(p.Seed * 11))
	churn := workload.Churn{LoadFraction: p.DriftFraction, LoadMax: 0.9}

	t := NewTable("X13 — periodic adaptation on a 1024-node overlay under drifting load",
		"sweep", "planned", "migrated", "usage before", "usage after", "settle sim-ms", "buffered", "forwarded")
	usage := dep.TotalUsage(truth)
	var totalMigrations, totalBuffered, totalForwarded int
	decreasing := true
	for sweep := 1; sweep <= p.Sweeps; sweep++ {
		workload.ApplyChurn(topo, env, churn, driftRng)
		before := dep.TotalUsage(truth)

		// Select this round's moves: highest incident-usage gain first,
		// positive gains only, capped by the budget. With ≤1 unpinned
		// operator per 1–2-stream circuit the gains are independent and
		// the realized usage drop equals their sum exactly.
		plan, err := co.Plan()
		if err != nil {
			return nil, err
		}
		moves := plan.Moves[:0:0]
		for _, m := range plan.Moves {
			if m.UsageGain > 1e-9 {
				moves = append(moves, m)
			}
		}
		sort.SliceStable(moves, func(i, j int) bool { return moves[i].UsageGain > moves[j].UsageGain })
		if len(moves) > p.Budget {
			moves = moves[:p.Budget]
		}
		selected := optimizer.MigrationPlan{Moves: moves, ServicesEvaluated: plan.ServicesEvaluated}
		st, err := co.Execute(selected, nil)
		if err != nil {
			return nil, err
		}
		clk.Sleep(time.Duration(p.IntervalSimSeconds * float64(time.Second)))

		after := dep.TotalUsage(truth)
		if after >= before {
			decreasing = false
		}
		totalMigrations += st.Migrated
		totalBuffered += st.Buffered
		totalForwarded += st.Forwarded
		t.AddRow(sweep, st.Planned, st.Migrated, before, after,
			net.SimMillis(st.SettleDuration), st.Buffered, st.Forwarded)
		usage = after
	}

	// Quiesce and close the loss accounting.
	for _, run := range runs {
		run.HaltProducers()
	}
	clk.Sleep(time.Second)
	var produced, delivered int
	for _, run := range runs {
		produced += run.TuplesProduced()
		delivered += run.Measure().TuplesOut
	}
	unrouted := int(net.Metrics.Counter("msgs.unrouted").Value())
	downDropped := int(net.Metrics.Counter("msgs.down_dropped").Value())
	wall := time.Since(wallStart)

	t.AddNote("%d nodes, %d circuits, %d migrations over %d sweeps; final usage %.0f KB·ms/s; strictly decreasing per sweep: %v",
		topo.NumNodes(), len(runs), totalMigrations, p.Sweeps, usage, decreasing)
	t.AddNote("zero-loss accounting: unrouted=%d data-to-dead=%d; produced %d tuples, delivered %d; buffered %d / forwarded %d across handoffs",
		unrouted, downDropped, produced, delivered, totalBuffered, totalForwarded)
	t.AddNote("wall %v for %.0f simulated circuit-seconds of adaptive execution",
		wall.Round(time.Millisecond), float64(len(runs))*(p.WarmupSimSeconds+float64(p.Sweeps)*p.IntervalSimSeconds))
	return t, nil
}
