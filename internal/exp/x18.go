package exp

// X18 is the sharded data plane's headline scale point: a ~100k-node
// transit-stub overlay, a 500k-query batch through 64 optimizer
// regions, and the data plane executing on 64 parallel per-shard event
// queues keyed to those same regions. The scenario structure is X17's —
// ticker-maintained coordinates, full-population heartbeats, drift and
// adaptation rounds — at a scale where the single event queue
// serializes everything one core can do; the sharded clock turns the
// event kernel into K independent wheels that only synchronize at
// conservative lookahead barriers. Artifacts stay bit-identical to a
// single-queue run by the event-key construction, so the scale point
// adds parallelism, never a new semantics (TestX18Deterministic).
func X18(p X17Params) (*Table, error) {
	t, err := X17(p)
	if err != nil {
		return nil, err
	}
	t.Title = "X18 — 100k-node overlay: 500k queries, 64-shard data plane"
	return t, nil
}

// DefaultX18Params returns the full-scale configuration: ~100k overlay
// nodes (64 transit + 8·125·100 stub), 500k queries, 64 regions, 64
// data-plane shards.
func DefaultX18Params() X17Params {
	p := DefaultX17Params()
	p.Seed = 31
	p.TransitDomains = 8
	p.TransitNodes = 8
	p.StubsPerTransit = 125
	p.StubNodes = 100
	p.Streams = 128
	p.Queries = 500_000
	p.Shards = 64
	p.DataShards = 64
	p.EngineCircuits = 1024
	p.Rounds = 2
	return p
}
