package exp

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
	"github.com/hourglass/sbon/internal/workload"
)

// X15Params configures the incremental re-planning scenario.
type X15Params struct {
	Seed int64
	// StubNodes is the per-stub-domain node count; the default 21 gives
	// the 1024-node overlay.
	StubNodes int
	Streams   int
	Queries   int
	// DeltaFractions are the per-round drift sizes: before each re-plan,
	// this fraction of nodes gets a fresh background load, and the round
	// compares a full sweep against the delta-driven incremental one.
	// The last default (0.30) exceeds the re-optimizer's
	// FullSweepFraction, demonstrating the graceful fallback.
	DeltaFractions []float64
	// Trace, when set, records plan/plan_incremental spans with
	// per-move decision events for every round.
	Trace *trace.Tracer
}

// DefaultX15Params returns the full-scale 1024-node configuration.
func DefaultX15Params() X15Params {
	return X15Params{
		Seed:           31,
		StubNodes:      21,
		Streams:        16,
		Queries:        200,
		DeltaFractions: []float64{0.005, 0.01, 0.02, 0.05, 0.30},
	}
}

// X15 measures what incremental re-planning buys: 200 circuits deployed
// on the 1024-node overlay, then one re-planning round per delta size.
// Each round drifts the background load of a fraction of nodes and runs
// both a full sweep (every circuit re-placed, re-mapped, re-costed) and
// PlanIncremental (only circuits the delta log can affect). The two
// plans must be bit-identical — the incremental planner's contract — so
// the only difference is work: the services-evaluated ratio is the
// speedup continuous adaptation gets per round. Small deltas must show
// an order-of-magnitude reduction; a delta above FullSweepFraction must
// degenerate to a full sweep rather than track a log bigger than the
// overlay.
func X15(p X15Params) (*Table, error) {
	if p.StubNodes <= 0 {
		p.StubNodes = 21
	}
	if p.Streams <= 0 {
		p.Streams = 16
	}
	if p.Queries <= 0 {
		p.Queries = 200
	}
	if len(p.DeltaFractions) == 0 {
		p.DeltaFractions = DefaultX15Params().DeltaFractions
	}
	wallStart := time.Now()

	topoCfg := topology.DefaultConfig()
	topoCfg.StubNodes = p.StubNodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed * 3))
	sCfg := workload.DefaultStreamConfig()
	sCfg.NumStreams = p.Streams
	stats, err := workload.GenerateStats(topo, sCfg, rng)
	if err != nil {
		return nil, err
	}
	qCfg := workload.DefaultQueryConfig()
	qCfg.NumQueries = p.Queries
	qCfg.StreamsPerQuery = [2]int{2, 3}
	qCfg.AggregateProb = 0
	qs, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
	if err != nil {
		return nil, err
	}
	envCfg := optimizer.DefaultEnvConfig(p.Seed)
	envCfg.UseDHT = false // oracle mapping: the incremental equivalence contract's regime
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		return nil, err
	}
	results, err := optimizer.OptimizeBatch(env, qs, optimizer.BatchOptions{})
	if err != nil {
		return nil, err
	}
	dep := optimizer.NewDeployment(env, nil)
	for i := range results {
		if err := dep.Deploy(results[i].Circuit); err != nil {
			return nil, err
		}
	}

	ro := optimizer.NewReoptimizer(dep)
	ro.Mapper = placement.OracleMapper{Source: env}
	ro.Tracer = p.Trace
	// A generous hysteresis margin: the sweep's cost criterion charges a
	// service's load to its current host but not yet to the candidate,
	// so heavily loaded services can ping-pong between near-equal hosts
	// under a tight threshold. The wide margin makes the workload settle,
	// which is what lets the quiescent-round cost (zero circuits
	// re-planned) show up in the table.
	ro.ImprovementThreshold = 0.35
	apply := func(plan optimizer.MigrationPlan) error {
		for _, m := range plan.Moves {
			tk, err := dep.BeginMigration(m)
			if err != nil {
				return err
			}
			if err := tk.Commit(); err != nil {
				return err
			}
		}
		return nil
	}
	// Prime the delta-log watermark (by contract the first incremental
	// call is a full sweep) and settle any initial moves so the rounds
	// below measure drift response, not leftover deployment slack.
	for i := 0; ; i++ {
		plan, _, err := ro.PlanIncremental()
		if err != nil {
			return nil, err
		}
		if err := apply(plan); err != nil {
			return nil, err
		}
		if len(plan.Moves) == 0 {
			break
		}
		if i > 20 {
			return nil, fmt.Errorf("x15: initial deployment did not settle")
		}
	}

	churnRng := rand.New(rand.NewSource(p.Seed * 11))
	t := NewTable("X15 — incremental re-planning vs full sweeps under load drift",
		"delta %", "dirty nodes", "affected circuits", "evaluated full", "evaluated incr", "speedup", "full sweep", "moves")
	var speedupAt1pct float64
	for _, f := range p.DeltaFractions {
		workload.ApplyChurn(topo, env, workload.Churn{LoadFraction: f, LoadMax: 0.4}, churnRng)
		full, err := ro.Plan()
		if err != nil {
			return nil, err
		}
		inc, st, err := ro.PlanIncremental()
		if err != nil {
			return nil, err
		}
		// The equivalence contract is a hard invariant, not a statistic.
		if len(full.Moves) != len(inc.Moves) {
			return nil, fmt.Errorf("x15: delta %.3f: incremental planned %d moves, full sweep %d",
				f, len(inc.Moves), len(full.Moves))
		}
		for i := range full.Moves {
			if full.Moves[i] != inc.Moves[i] {
				return nil, fmt.Errorf("x15: delta %.3f: move %d diverges: %+v vs %+v",
					f, i, inc.Moves[i], full.Moves[i])
			}
		}
		den := inc.ServicesEvaluated
		if den == 0 {
			den = 1
		}
		speedup := float64(full.ServicesEvaluated) / float64(den)
		if f == 0.01 {
			speedupAt1pct = speedup
		}
		t.AddRow(100*f, st.DirtyNodes, st.AffectedCircuits,
			full.ServicesEvaluated, inc.ServicesEvaluated, speedup, st.FullSweep, len(inc.Moves))
		if err := apply(inc); err != nil {
			return nil, err
		}
	}

	t.AddNote("%d nodes, %d circuits; every round's incremental plan was bit-identical to the full sweep's",
		topo.NumNodes(), len(results))
	if speedupAt1pct > 0 {
		t.AddNote("1%%-node drift re-evaluated %.1fx fewer services than the full sweep", speedupAt1pct)
	}
	t.AddNote("wall %v for %d full+incremental re-planning rounds",
		time.Since(wallStart).Round(time.Millisecond), len(p.DeltaFractions))
	return t, nil
}
