// Package sbon is a stream-based overlay network (SBON) simulator with a
// cost-space query optimizer, reproducing Shneidman et al., "A Cost-Space
// Approach to Distributed Query Optimization in Stream Based Overlays"
// (ICDE 2005).
//
// A System bundles everything the paper describes: a transit-stub
// wide-area topology, Vivaldi network coordinates, a cost space (latency
// plane + weighted CPU-load dimension), a Hilbert-curve-keyed DHT
// catalog, plan enumeration, spring-relaxation virtual placement with
// DHT physical mapping, the integrated and two-step optimizers,
// radius-pruned multi-query optimization, a re-optimization/migration
// controller, and a stream engine that executes circuits with real
// tuples — on a goroutine-per-node wall-clock runtime, or (with
// Options.VirtualTime) on a deterministic discrete-event clock where
// measurement windows complete instantly and same-seed runs reproduce
// bit-identically (internal/simtime).
//
// Multi-query reuse (§3.4) executes for real: a circuit that reuses
// another's service instance deploys without instantiating the shared
// subtree — the engine taps the owning circuit's operator output and
// fans it out to every subscriber, cancelling an owner hands the
// instance to a surviving consumer, and migrating a shared instance
// re-routes all subscribers atomically at cutover (see
// System.SharedExecution and the X14 experiment).
//
// Running circuits adapt while they execute: System.Adapt plans service
// moves over the cost space (a typed MigrationPlan), charges in-flight
// load on both hosts through a two-phase deployment protocol, and
// migrates the live operators with a buffered handoff — upstream tuples
// re-route to the new host and queue there, the old host drains, state
// moves, the buffer replays, stragglers forward — so re-optimization
// costs zero tuple loss (internal/adapt, stream.Engine.Migrate).
// System.Evacuate drains every service off departing nodes before they
// leave the overlay.
//
// Physical mapping — projecting ideal virtual coordinates onto nearest
// physical nodes in full cost-space distance, the per-query hot path —
// is served by an epoch-versioned exact k-NN index over node cost-space
// points (internal/costindex): environment mutations mark it dirty, it
// rebuilds (or patches, for single-point load moves) lazily, and frozen
// snapshots share one immutable index lock-free across OptimizeBatch
// workers. Results are identical to exhaustive scans; see the README's
// Performance section for the measured effect.
//
// Quickstart:
//
//	sys, _ := sbon.New(sbon.Options{Seed: 1})
//	sys.AddStream(0, sys.StubNodes()[0], 100) // 100 KB/s producer
//	sys.AddStream(1, sys.StubNodes()[9], 150)
//	res, _ := sys.Optimize(sbon.Query{ID: 1, Consumer: sys.StubNodes()[20],
//	        Streams: []sbon.StreamID{0, 1}})
//	fmt.Println(res.Circuit, sys.Usage(res.Circuit))
package sbon

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/hourglass/sbon/internal/adapt"
	"github.com/hourglass/sbon/internal/failure"
	"github.com/hourglass/sbon/internal/metrics"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/stream"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// Re-exported identifier and model types, so applications only import
// this package.
type (
	// NodeID identifies an overlay node.
	NodeID = topology.NodeID
	// StreamID identifies a published source stream.
	StreamID = query.StreamID
	// QueryID identifies a continuous query.
	QueryID = query.QueryID
	// Query is a continuous query over source streams.
	Query = query.Query
	// Circuit is a physically placed query (services bound to nodes).
	Circuit = optimizer.Circuit
	// Result is an optimization outcome.
	Result = optimizer.Result
	// TopologyConfig parameterizes the transit-stub generator.
	TopologyConfig = topology.Config
	// Measurement is a data-plane measurement snapshot.
	Measurement = stream.Measurement
	// BatchOptions configures OptimizeBatch.
	BatchOptions = optimizer.BatchOptions
	// ShardedBatchOptions configures OptimizeBatchSharded.
	ShardedBatchOptions = optimizer.ShardedBatchOptions
	// ShardStats reports how a sharded batch was routed.
	ShardStats = optimizer.ShardStats
	// PlanCache memoizes winning logical plans across optimizations.
	PlanCache = optimizer.PlanCache
	// MigrationPlan is a typed re-optimization sweep output: the service
	// moves a control plane hands to the data plane.
	MigrationPlan = optimizer.MigrationPlan
	// AdaptStats reports one sweep→migrate→settle adaptation round.
	AdaptStats = adapt.SweepStats
	// AdaptRunStats aggregates a continuous adaptation loop
	// (AdaptContinuously).
	AdaptRunStats = adapt.RunStats
	// SharedStats is a snapshot of the engine's shared-execution state:
	// instances executing once for multiple circuits, their
	// subscribers, and zombie providers awaiting their last release.
	SharedStats = stream.SharedStats
	// FaultPlan scripts deterministic fault injection on the overlay:
	// seeded message loss, latency jitter, link/partition cuts, and
	// unannounced node crashes (see InstallFaults).
	FaultPlan = overlay.FaultPlan
	// NodeCrash schedules one unannounced node death (and optional
	// recovery) inside a FaultPlan.
	NodeCrash = overlay.NodeCrash
	// LinkFault is a windowed per-link cut or loss inside a FaultPlan.
	LinkFault = overlay.LinkFault
	// PartitionFault is a windowed group split inside a FaultPlan.
	PartitionFault = overlay.PartitionFault
	// FailureEvent is one failure-detector verdict (suspected, died,
	// recovered).
	FailureEvent = failure.Event
	// RepairStats reports failure-repair rounds: circuits cancelled,
	// services re-placed, and state/tuples counted lost.
	RepairStats = adapt.RepairStats
)

// Options configures a System.
type Options struct {
	// Seed drives all randomness (topology, coordinates, loads).
	Seed int64
	// Topology overrides the transit-stub configuration; zero value
	// means the paper's ~600-node default.
	Topology TopologyConfig
	// DefaultJoinSelectivity is the catalog default for stream pairs
	// without explicit statistics (default 0.8).
	DefaultJoinSelectivity float64
	// DisableDHT skips the Chord/Hilbert catalog and maps coordinates
	// with a centralized oracle instead (faster, less faithful).
	DisableDHT bool
	// TimeScale is the engine's wall time per simulated millisecond
	// (default 50µs; under VirtualTime, one virtual millisecond). Only
	// used once StartEngine is called.
	TimeScale time.Duration
	// VirtualTime runs the engine on the deterministic discrete-event
	// clock (internal/simtime): RunFor windows complete instantly, and
	// same-seed runs deliver bit-identical measurements.
	VirtualTime bool
	// Trace enables the structured event tracer: optimizer decisions,
	// migration phases, repair rounds, DHT lookup hops, fault and
	// failure-detector events, and sampled tuple hops, all stamped by
	// the engine clock. Under VirtualTime the serialized trace is
	// bit-identical for a fixed seed. The tracer starts with the engine
	// (StartEngine); access it with Tracer, export with WriteReport or
	// the tracer's own writers.
	Trace bool
	// DataShards executes the data plane on that many parallel
	// per-shard event queues (rounded down to a power of two), with
	// nodes assigned to shards by the same Hilbert-prefix cost-space
	// regions OptimizeBatchSharded routes by. Requires VirtualTime.
	// Every artifact — measurements, traces, placements — is defined to
	// be bit-identical to the single-queue run; only wall time changes.
	// <= 1 (the default) keeps the single event queue.
	DataShards int
}

// System is a fully assembled SBON.
type System struct {
	Topo       *topology.Topology
	Env        *optimizer.Env
	Stats      *query.Catalog
	Registry   *optimizer.Registry
	Deployment *optimizer.Deployment

	opts      Options
	net       *overlay.Network
	engine    *stream.Engine
	vclk      *simtime.VirtualClock
	planCache *optimizer.PlanCache
	// shardCaches is the persistent per-region cache set behind
	// OptimizeBatchSharded, allocated on first use and re-allocated when
	// the requested shard count changes.
	shardCaches *optimizer.ShardedPlanCache
	hb          *overlay.Heartbeats
	det         *failure.Detector
	tracer      *trace.Tracer

	// adaptCo is the persistent adaptation coordinator: incremental
	// sweeps carry a delta-log watermark across Adapt/AdaptContinuously
	// calls, so one instance must serve them all.
	adaptCo *adapt.Coordinator
}

// New builds a System: generates the topology, embeds coordinates,
// assigns background loads, and (unless disabled) constructs the DHT
// catalog with every node's cost-space coordinate published.
func New(opts Options) (*System, error) {
	topoCfg := opts.Topology
	if topoCfg.TotalNodes() == 0 {
		topoCfg = topology.DefaultConfig()
	}
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(opts.Seed)))
	if err != nil {
		return nil, err
	}
	defSel := opts.DefaultJoinSelectivity
	if defSel <= 0 {
		defSel = 0.8
	}
	stats, err := query.NewCatalog(defSel)
	if err != nil {
		return nil, err
	}
	envCfg := optimizer.DefaultEnvConfig(opts.Seed)
	envCfg.UseDHT = !opts.DisableDHT
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		return nil, err
	}
	reg := optimizer.NewRegistry()
	return &System{
		Topo:       topo,
		Env:        env,
		Stats:      stats,
		Registry:   reg,
		Deployment: optimizer.NewDeployment(env, reg),
		opts:       opts,
		planCache:  optimizer.NewPlanCache(),
	}, nil
}

// StubNodes returns the edge (stub) nodes — where producers and
// consumers typically live.
func (s *System) StubNodes() []NodeID { return s.Topo.StubNodeIDs() }

// TransitNodes returns the core (transit) nodes.
func (s *System) TransitNodes() []NodeID { return s.Topo.TransitNodeIDs() }

// AddStream registers a source stream published by producer at rate
// KB/s. Statistics changes advance the environment epoch so plan caches
// drop plans enumerated under the old catalog.
func (s *System) AddStream(id StreamID, producer NodeID, rateKBs float64) error {
	if err := s.Stats.AddStream(id, producer, rateKBs); err != nil {
		return err
	}
	s.Env.NoteStatsChanged()
	return nil
}

// SetJoinSelectivity sets the pairwise join selectivity between two
// streams. Statistics changes advance the environment epoch so plan
// caches drop plans enumerated under the old catalog.
func (s *System) SetJoinSelectivity(a, b StreamID, sel float64) error {
	if err := s.Stats.SetPairSelectivity(a, b, sel); err != nil {
		return err
	}
	s.Env.NoteStatsChanged()
	return nil
}

// Optimize runs the paper's integrated optimization: every candidate
// plan is virtually placed in the cost space and physically mapped; the
// cheapest resulting circuit is returned (not yet deployed).
func (s *System) Optimize(q Query) (*Result, error) {
	return optimizer.NewIntegrated(s.Env).Optimize(q)
}

// OptimizeBatch optimizes many queries concurrently over one frozen
// snapshot of the environment: a worker pool shares the snapshot — and
// its cost-space k-NN index, built once per snapshot — without locking,
// and a plan cache keyed by (consumer, canonical stream set, cost-space
// Hilbert cell) lets repeated queries skip plan enumeration and re-run
// only placement. Results are in query order.
//
// Unless opts.Cache is set or opts.NoCache is true, the System's
// persistent plan cache is used, so later batches benefit from earlier
// ones; any mutation of the System (Deploy, Cancel, SetBackgroundLoad,
// Reoptimize, AddStream, SetJoinSelectivity) bumps the environment's
// epoch and flushes the cache, so stale plans are never served. The
// System must not be mutated while a batch is running.
func (s *System) OptimizeBatch(queries []Query, opts BatchOptions) ([]Result, error) {
	if opts.Cache == nil && !opts.NoCache {
		opts.Cache = s.planCache
	}
	return optimizer.OptimizeBatch(s.Env, queries, opts)
}

// OptimizeBatchSharded optimizes many queries over per-region shards:
// the cost space is split into Hilbert-prefix regions, each with its own
// frozen snapshot, plan cache, cost index, and worker pool; queries
// whose footprint spans regions run on a global fallback pool. Results
// are bit-identical to OptimizeBatch. Unless opts.Caches (or NoCache)
// is set, the System keeps one persistent sharded cache set per shard
// count, so repeated batches hit warm caches like OptimizeBatch does.
func (s *System) OptimizeBatchSharded(queries []Query, opts ShardedBatchOptions) ([]Result, *ShardStats, error) {
	if opts.Caches == nil && !opts.NoCache {
		k := optimizer.RoundShards(opts.Shards)
		if s.shardCaches == nil || s.shardCaches.Shards() != k {
			s.shardCaches = optimizer.NewShardedPlanCache(k)
		}
		opts.Caches = s.shardCaches
	}
	return optimizer.OptimizeBatchSharded(s.Env, queries, opts)
}

// PlanCacheStats returns the cumulative hit/miss counts and current size
// of the System's persistent plan cache.
func (s *System) PlanCacheStats() (hits, misses, entries int) {
	hits, misses = s.planCache.Stats()
	return hits, misses, s.planCache.Len()
}

// OptimizeTwoStep runs the classical baseline: the statistics-optimal
// plan is chosen first and only then placed.
func (s *System) OptimizeTwoStep(q Query) (*Result, error) {
	return optimizer.NewTwoStep(s.Env).Optimize(q)
}

// OptimizeShared runs multi-query optimization: plan subtrees may be
// satisfied by services of already-deployed circuits found within the
// cost-space radius of their ideal placement coordinates.
func (s *System) OptimizeShared(q Query, radius float64) (*Result, error) {
	return optimizer.NewMultiQuery(s.Env, s.Registry, radius).Optimize(q)
}

// Deploy installs an optimized circuit: loads are charged to hosting
// nodes and its services become reusable by later queries.
func (s *System) Deploy(c *Circuit) error { return s.Deployment.Deploy(c) }

// Cancel removes a deployed circuit, releasing services whose last
// consumer is gone.
func (s *System) Cancel(id QueryID) error { return s.Deployment.Cancel(id) }

// Usage returns the circuit's network usage Σ rate·latency (KB·ms/s) on
// the true topology.
func (s *System) Usage(c *Circuit) float64 {
	return c.NetworkUsage(optimizer.TrueLatency{Topo: s.Topo})
}

// Latency returns the circuit's worst producer→consumer path latency in
// milliseconds on the true topology.
func (s *System) Latency(c *Circuit) float64 {
	return c.ConsumerLatency(optimizer.TrueLatency{Topo: s.Topo})
}

// TotalUsage returns the summed network usage of all deployed circuits
// (shared links counted once).
func (s *System) TotalUsage() float64 {
	return s.Deployment.TotalUsage(optimizer.TrueLatency{Topo: s.Topo})
}

// SetBackgroundLoad changes a node's background CPU load, moving its
// cost-space coordinate (and DHT entry).
func (s *System) SetBackgroundLoad(n NodeID, load float64) {
	s.Env.SetBackgroundLoad(n, load)
}

// Reoptimize performs one local re-optimization sweep: deployed services
// re-run placement and migrate when the cost improvement clears the
// hysteresis threshold. The moves apply to the control plane only; use
// Adapt to migrate circuits that are executing on the engine.
func (s *System) Reoptimize() (optimizer.StepStats, error) {
	return optimizer.NewReoptimizer(s.Deployment).Step()
}

// PlanReoptimization runs a re-optimization sweep and returns the typed
// migration plan without applying anything — what Adapt executes
// internally, exposed for callers that want to inspect or filter moves.
func (s *System) PlanReoptimization() (MigrationPlan, error) {
	return optimizer.NewReoptimizer(s.Deployment).Plan()
}

// AdaptOptions tunes System.Adapt.
type AdaptOptions struct {
	// Sweeps is the number of sweep→migrate→settle rounds (default 1).
	Sweeps int
	// Budget caps migrations per sweep, best predicted gain first
	// (0 = unbounded).
	Budget int
	// Threshold is the re-optimization hysteresis (default 0.05).
	Threshold float64
	// Exclude bars nodes as migration targets.
	Exclude map[NodeID]bool
}

// Adapt runs live re-optimization rounds: each sweep plans service
// moves over the cost space, walks every selected move through the
// two-phase deployment protocol, and — when the engine is running the
// affected circuits — migrates the operators under traffic (buffered
// handoff, zero tuple loss) before committing. Returns per-sweep
// statistics. Without a started engine the moves commit instantly
// (control-plane-only adaptation).
func (s *System) Adapt(opts AdaptOptions) ([]AdaptStats, error) {
	sweeps := opts.Sweeps
	if sweeps <= 0 {
		sweeps = 1
	}
	co := s.coordinator(opts)
	// Settle waits are tracked virtual-clock sleeps; register the caller
	// as the driving actor for their duration (same contract as RunFor).
	if s.vclk != nil {
		s.vclk.Register()
		defer s.vclk.Unregister()
	}
	out := make([]AdaptStats, 0, sweeps)
	for i := 0; i < sweeps; i++ {
		st, err := co.Sweep(nil)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}

// AdaptContinuously runs the clock-driven continuous adaptation loop
// (the paper's §3.3 continuous optimization at delta cost): every
// interval, the coordinator consumes the environment's delta log —
// every load change, deploy, cancel, and committed migration since the
// last round — and re-plans only the circuits the delta can affect,
// then migrates and settles as Adapt does. The first round is a full
// sweep; later rounds cost O(delta), so a quiet overlay re-plans
// nothing.
//
// The call blocks until stop fires. Under Options.VirtualTime it is
// deterministic: fire stop through the virtual clock (e.g. a timer
// scheduled with AfterFunc) and same-seed runs reproduce bit-identical
// round statistics. The coordinator's incremental watermark persists
// across Adapt and AdaptContinuously calls on the same System.
func (s *System) AdaptContinuously(interval time.Duration, stop <-chan struct{}, opts AdaptOptions) (AdaptRunStats, error) {
	co := s.coordinator(opts)
	if s.vclk != nil {
		s.vclk.Register()
		defer s.vclk.Unregister()
	}
	return co.Run(interval, stop)
}

// Evacuate force-migrates every service off the given nodes (graceful
// drain before decommissioning them), with live handoff for executing
// circuits. The drained nodes are also excluded as targets of the
// evacuation itself.
func (s *System) Evacuate(nodes []NodeID) (AdaptStats, error) {
	opts := AdaptOptions{Exclude: make(map[NodeID]bool, len(nodes))}
	for _, n := range nodes {
		opts.Exclude[n] = true
	}
	if s.vclk != nil {
		s.vclk.Register()
		defer s.vclk.Unregister()
	}
	return s.coordinator(opts).Evacuate(nodes, nil)
}

// InstallFaults arms deterministic fault injection on the started
// overlay runtime: seeded per-message loss, latency jitter, link and
// partition cuts, and scheduled unannounced node crashes. Crash times
// are relative to the call. Same plan, same seed → bit-identical fault
// sequences under VirtualTime. Returns the injector for live control
// (CrashNode, Partition, CrashTime) — it stops with the System.
func (s *System) InstallFaults(plan FaultPlan) (*overlay.FaultInjector, error) {
	if s.net == nil {
		return nil, fmt.Errorf("sbon: engine not started; call StartEngine first")
	}
	return s.net.InstallFaults(plan), nil
}

// StartFailureDetection begins heartbeat emission (each node beats to
// its ring successor among live nodes) and starts the failure detector
// that consumes them: a node missing 2 beats is suspected, 4 confirmed
// dead, and a dead node beating again is recovered. beat is the
// heartbeat period (default 200 simulated ms); detection latency is
// bounded by 5 beats plus one check period. The detector feeds
// AdaptWithRepair; both stop with the System.
func (s *System) StartFailureDetection(beat time.Duration) (*failure.Detector, error) {
	if s.net == nil {
		return nil, fmt.Errorf("sbon: engine not started; call StartEngine first")
	}
	if s.det != nil {
		return nil, fmt.Errorf("sbon: failure detection already started")
	}
	if beat <= 0 {
		beat = 200 * time.Millisecond
	}
	s.hb = s.net.StartHeartbeatsOpts(beat, 0.05, overlay.HeartbeatOpts{SkipDownTargets: true})
	dcfg := failure.DefaultConfig(beat)
	dcfg.Tracer = s.tracer
	s.det = failure.New(s.net, dcfg)
	return s.det, nil
}

// AdaptWithRepair runs the continuous adaptation loop with automatic
// failure recovery (StartFailureDetection must have been called): every
// interval the coordinator first consumes the detector's verdicts —
// cancelling circuits that lost a pinned endpoint, re-placing every
// service stranded on a confirmed-dead node via an evacuation sweep
// over live nodes, re-instantiating the lost operators fresh with
// state and in-flight tuples counted lost — and then runs one
// incremental sweep→migrate→settle round, until stop fires. No manual
// Evacuate calls are needed for crashes. Deterministic under
// VirtualTime, like AdaptContinuously.
func (s *System) AdaptWithRepair(interval time.Duration, stop <-chan struct{}, opts AdaptOptions) (AdaptRunStats, RepairStats, error) {
	if s.det == nil {
		return AdaptRunStats{}, RepairStats{}, fmt.Errorf("sbon: failure detection not started; call StartFailureDetection first")
	}
	co := s.coordinator(opts)
	if co.TicketTTL <= 0 {
		co.TicketTTL = 5 * time.Second
	}
	if s.vclk != nil {
		s.vclk.Register()
		defer s.vclk.Unregister()
	}
	return co.RunWithRepair(s.det, interval, stop)
}

// StopAfter returns a channel signalled after simSeconds of simulated
// time — a deterministic stop trigger for AdaptContinuously and
// AdaptWithRepair. Under VirtualTime the signal is a discrete event of
// the virtual clock; otherwise a wall-clock timer fires it.
func (s *System) StopAfter(simSeconds float64) (<-chan struct{}, error) {
	if s.net == nil {
		return nil, fmt.Errorf("sbon: engine not started; call StartEngine first")
	}
	stop := make(chan struct{})
	d := time.Duration(simSeconds * 1000 * float64(s.net.Config().TimeScale))
	if s.vclk != nil {
		s.vclk.AfterFunc(d, func() { s.vclk.Signal(stop) })
	} else {
		time.AfterFunc(d, func() { close(stop) })
	}
	return stop, nil
}

// coordinator returns the System's persistent adaptation coordinator,
// refreshed with the current options, engine, and clock. One instance
// serves every call so incremental sweep bookkeeping survives between
// rounds.
func (s *System) coordinator(opts AdaptOptions) *adapt.Coordinator {
	if s.adaptCo == nil {
		s.adaptCo = &adapt.Coordinator{Dep: s.Deployment}
	}
	co := s.adaptCo
	co.Engine = s.engine
	co.Threshold = opts.Threshold
	co.Budget = opts.Budget
	co.Exclude = opts.Exclude
	co.Tracer = s.tracer
	co.Clock = nil
	if s.vclk != nil {
		co.Clock = s.vclk
	} else if s.net != nil {
		co.Clock = s.net.Clock()
	}
	return co
}

// Rewrite performs one plan-rewriting sweep (§3.3 "limited plan
// re-writing"): deployed circuits explore one-step join reorderings and
// swap to a cheaper shape when the improvement clears the threshold.
func (s *System) Rewrite() (optimizer.RewriteStats, error) {
	return optimizer.NewReoptimizer(s.Deployment).RewriteStep()
}

// StartEngine launches the overlay runtime and the stream engine so
// circuits can be executed with real tuples: goroutine-per-node in wall
// time by default, or the deterministic discrete-event runtime when
// Options.VirtualTime is set.
func (s *System) StartEngine() error {
	if s.engine != nil {
		return fmt.Errorf("sbon: engine already started")
	}
	cfg := overlay.DefaultConfig()
	if s.opts.TimeScale > 0 {
		cfg.TimeScale = s.opts.TimeScale
	}
	if s.opts.VirtualTime {
		s.vclk = simtime.NewVirtual()
		cfg.Clock = s.vclk
		if s.opts.TimeScale <= 0 {
			cfg.TimeScale = time.Millisecond
		}
		if s.opts.DataShards > 1 {
			k := optimizer.RoundShards(s.opts.DataShards)
			laneOf, err := optimizer.NodeRegions(s.Env, k)
			if err != nil {
				return err
			}
			lookahead := time.Duration(s.Topo.MinEdgeLatency() * float64(cfg.TimeScale))
			if lookahead <= 0 {
				return fmt.Errorf("sbon: topology has no positive edge latency — data-plane sharding needs a conservative lookahead")
			}
			s.vclk.ShardLanes(laneOf, k, lookahead)
			cfg.DataShards = k
			cfg.ShardOf = laneOf
		}
	} else if s.opts.DataShards > 1 {
		return fmt.Errorf("sbon: DataShards requires VirtualTime")
	}
	s.net = overlay.NewNetwork(s.Topo, cfg)
	if s.opts.Trace {
		s.tracer = trace.New(cfg.Clock)
		s.net.SetTracer(s.tracer)
		if cat := s.Env.Catalog(); cat != nil {
			cat.Ring().SetTracer(s.tracer)
		}
	}
	s.net.Start()
	s.engine = stream.NewEngine(s.net, s.Topo, stream.EngineConfig{
		Keyspace:    1000,
		TupleSizeKB: 1.0,
		Seed:        s.opts.Seed,
		Tracer:      s.tracer,
	})
	return nil
}

// Tracer returns the structured event tracer, or nil when Options.Trace
// is unset or the engine has not started. The nil return is safe to use
// directly: every tracer method no-ops on a nil receiver.
func (s *System) Tracer() *trace.Tracer { return s.tracer }

// Metrics returns the overlay runtime's metric registry (counters,
// histograms, labeled families), or nil before StartEngine.
func (s *System) Metrics() *metrics.Registry {
	if s.net == nil {
		return nil
	}
	return s.net.Metrics
}

// WriteReport writes one JSON document merging the runtime's metric
// registry with the run's trace (when tracing is enabled) — the
// run-scoped export behind sbon-sim's -metrics-dump flag. The engine
// must be started.
func (s *System) WriteReport(w io.Writer, label string) error {
	if s.net == nil {
		return fmt.Errorf("sbon: engine not started; call StartEngine first")
	}
	rep := metrics.Report{Label: label, Registry: s.net.Metrics}
	if s.tracer != nil {
		rep.Trace = s.tracer.WriteEventsJSON
	}
	return rep.WriteJSON(w)
}

// Run executes a circuit on the engine (StartEngine must have been
// called) and returns a handle for measurement. Circuits with reused
// services execute without duplicating the shared operators: the engine
// taps the owning circuit's operator output, so run providers before
// their consumers (OptimizeShared results reuse instances of circuits
// deployed earlier).
func (s *System) Run(c *Circuit) (*stream.Running, error) {
	if s.engine == nil {
		return nil, fmt.Errorf("sbon: engine not started; call StartEngine first")
	}
	return s.engine.Deploy(c)
}

// SharedExecution reports how many shared service instances the engine
// is executing once for multiple circuits, how many circuits subscribe
// to them, and how many cancelled providers linger for their
// subscribers. Zero value when the engine is not started.
func (s *System) SharedExecution() SharedStats {
	if s.engine == nil {
		return SharedStats{}
	}
	return s.engine.SharedStats()
}

// StopRun halts an executing circuit.
func (s *System) StopRun(id QueryID) error {
	if s.engine == nil {
		return fmt.Errorf("sbon: engine not started")
	}
	return s.engine.Stop(id)
}

// RunFor advances the data plane by simSeconds simulated seconds: a
// scaled wall-clock sleep on the real engine, an instant deterministic
// jump of the event scheduler under VirtualTime.
func (s *System) RunFor(simSeconds float64) error {
	if s.net == nil {
		return fmt.Errorf("sbon: engine not started; call StartEngine first")
	}
	d := time.Duration(simSeconds * 1000 * float64(s.net.Config().TimeScale))
	if s.vclk != nil {
		s.vclk.Register()
		defer s.vclk.Unregister()
		s.vclk.Sleep(d)
		return nil
	}
	time.Sleep(d)
	return nil
}

// Close shuts down the engine and overlay runtime if they were started.
func (s *System) Close() {
	if s.det != nil {
		s.det.Stop()
		s.det = nil
	}
	if s.hb != nil {
		s.hb.Stop()
		s.hb = nil
	}
	if s.engine != nil {
		s.engine.Close()
		s.engine = nil
	}
	if s.net != nil {
		s.net.Stop()
		s.net = nil
	}
	if s.vclk != nil {
		s.vclk.Stop()
		s.vclk = nil
	}
}
