package sbon

import (
	"math"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/topology"
)

// smallOpts keeps facade tests fast (~44 nodes).
func smallOpts(seed int64) Options {
	return Options{
		Seed: seed,
		Topology: TopologyConfig{
			TransitDomains:      2,
			TransitNodes:        2,
			StubsPerTransit:     2,
			StubNodes:           5,
			IntraStubLatency:    [2]float64{1, 5},
			StubUplinkLatency:   [2]float64{2, 10},
			IntraTransitLatency: [2]float64{8, 20},
			InterTransitLatency: [2]float64{30, 80},
			ExtraStubEdgeProb:   0.2,
		},
	}
}

func newSystem(t *testing.T, seed int64) *System {
	t.Helper()
	sys, err := New(smallOpts(seed))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	stubs := sys.StubNodes()
	for i := 0; i < 4; i++ {
		if err := sys.AddStream(StreamID(i), stubs[i*4], 60+float64(i)*30); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestNewSystemDefaults(t *testing.T) {
	sys, err := New(Options{Seed: 1, DisableDHT: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if got := sys.Topo.NumNodes(); got != 592 {
		t.Fatalf("default topology has %d nodes, want 592", got)
	}
	if len(sys.StubNodes()) != 576 || len(sys.TransitNodes()) != 16 {
		t.Fatal("node partitions wrong")
	}
}

func TestOptimizeAndDeployLifecycle(t *testing.T) {
	sys := newSystem(t, 2)
	q := Query{ID: 1, Consumer: sys.StubNodes()[19], Streams: []StreamID{0, 1, 2}}
	res, err := sys.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit == nil || res.PlansConsidered == 0 {
		t.Fatalf("result = %+v", res)
	}
	if u := sys.Usage(res.Circuit); u <= 0 {
		t.Fatalf("usage = %v", u)
	}
	if l := sys.Latency(res.Circuit); l <= 0 {
		t.Fatalf("latency = %v", l)
	}
	if err := sys.Deploy(res.Circuit); err != nil {
		t.Fatal(err)
	}
	if got := sys.TotalUsage(); math.Abs(got-sys.Usage(res.Circuit)) > 1e-9 {
		t.Fatalf("TotalUsage %v != circuit usage %v", got, sys.Usage(res.Circuit))
	}
	if err := sys.Cancel(q.ID); err != nil {
		t.Fatal(err)
	}
	if sys.TotalUsage() != 0 {
		t.Fatal("usage after cancel nonzero")
	}
}

func TestTwoStepNeverBeatsIntegratedHere(t *testing.T) {
	sys := newSystem(t, 3)
	q := Query{ID: 2, Consumer: sys.StubNodes()[0], Streams: []StreamID{0, 1, 2, 3}}
	ri, err := sys.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := sys.OptimizeTwoStep(q)
	if err != nil {
		t.Fatal(err)
	}
	// Both select under the coordinate model; compare on that model where
	// the superset guarantee holds.
	if ri.EstimatedUsage > rt.EstimatedUsage+1e-9 {
		t.Fatalf("integrated estimate %v worse than two-step %v", ri.EstimatedUsage, rt.EstimatedUsage)
	}
}

func TestOptimizeSharedReuse(t *testing.T) {
	sys := newSystem(t, 4)
	q1 := Query{ID: 3, Consumer: sys.StubNodes()[5], Streams: []StreamID{0, 1}}
	r1, err := sys.OptimizeShared(q1, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(r1.Circuit); err != nil {
		t.Fatal(err)
	}
	q2 := Query{ID: 4, Consumer: sys.StubNodes()[12], Streams: []StreamID{0, 1}}
	fresh, err := sys.Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.OptimizeShared(q2, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if r2.ReusedServices == 0 {
		t.Fatal("identical query found no reusable service")
	}
	// Under the selection model, the shared candidate set is a superset
	// of the fresh one, so reuse can only help.
	if r2.EstimatedUsage > fresh.EstimatedUsage+1e-9 {
		t.Fatalf("shared estimate %v worse than fresh %v", r2.EstimatedUsage, fresh.EstimatedUsage)
	}
	if err := sys.Deploy(r2.Circuit); err != nil {
		t.Fatal(err)
	}
	// Total usage = first circuit + marginal links of the second only.
	total := sys.TotalUsage()
	if total <= sys.Usage(r1.Circuit) {
		t.Fatal("second circuit added no marginal usage?")
	}
}

func TestSetBackgroundLoadAndReoptimize(t *testing.T) {
	sys := newSystem(t, 5)
	q := Query{ID: 5, Consumer: sys.StubNodes()[7], Streams: []StreamID{0, 1, 2}}
	res, err := sys.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(res.Circuit); err != nil {
		t.Fatal(err)
	}
	victim := res.Circuit.UnpinnedServices()[0].Node
	sys.SetBackgroundLoad(victim, 0.99)
	stats, err := sys.Reoptimize()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ServicesEvaluated == 0 {
		t.Fatal("no services evaluated")
	}
}

func TestEngineEndToEnd(t *testing.T) {
	opts := smallOpts(6)
	opts.TimeScale = 10 * time.Microsecond
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.AddStream(0, sys.StubNodes()[2], 50); err != nil {
		t.Fatal(err)
	}
	q := Query{ID: 6, Consumer: sys.StubNodes()[15], Streams: []StreamID{0}}
	res, err := sys.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(res.Circuit); err == nil {
		t.Fatal("Run before StartEngine accepted")
	}
	if err := sys.StartEngine(); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartEngine(); err == nil {
		t.Fatal("double StartEngine accepted")
	}
	run, err := sys.Run(res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(800 * time.Millisecond)
	m := run.Measure()
	if m.TuplesOut == 0 {
		t.Fatal("no tuples delivered through facade")
	}
	if err := sys.StopRun(q.ID); err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys.Close() // idempotent
}

func TestStopRunWithoutEngine(t *testing.T) {
	sys := newSystem(t, 7)
	if err := sys.StopRun(1); err == nil {
		t.Fatal("StopRun without engine accepted")
	}
}

func TestSetJoinSelectivityFlowsIntoPlans(t *testing.T) {
	sys := newSystem(t, 8)
	if err := sys.SetJoinSelectivity(0, 1, 0.1); err != nil {
		t.Fatal(err)
	}
	q := Query{ID: 9, Consumer: sys.StubNodes()[3], Streams: []StreamID{0, 1, 2}}
	res, err := sys.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// With sel(0,1) tiny, the best plan joins 0⋈1 first.
	sigs := map[string]bool{}
	for _, s := range res.Circuit.Services {
		if s.Plan != nil {
			sigs[s.Plan.Signature()] = true
		}
	}
	if !sigs["join(s0,s1)"] {
		t.Fatalf("plan ignored selective pair: %v", res.Circuit.Plan)
	}
}

func TestInvalidTopologyOption(t *testing.T) {
	_, err := New(Options{Topology: TopologyConfig{TransitDomains: -1, TransitNodes: 1}})
	if err == nil {
		t.Fatal("invalid topology accepted")
	}
}

var _ = topology.Config{} // keep explicit dependency for the alias check below

func TestTypeAliasesUsable(t *testing.T) {
	var n NodeID = 5
	var s StreamID = 2
	var q QueryID = 1
	if int(n)+int(s)+int(q) != 8 {
		t.Fatal("aliases broken")
	}
}

// Across random seeds, the integrated optimizer's estimate can never
// exceed the two-step baseline's: under one selection model it evaluates
// a strict superset of candidate circuits through the same pipeline.
func TestIntegratedSupersetGuaranteeAcrossSeeds(t *testing.T) {
	for seed := int64(100); seed < 108; seed++ {
		sys := newSystem(t, seed)
		q := Query{ID: 1, Consumer: sys.StubNodes()[int(seed)%16], Streams: []StreamID{0, 1, 2, 3}}
		ri, err := sys.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := sys.OptimizeTwoStep(q)
		if err != nil {
			t.Fatal(err)
		}
		if ri.EstimatedUsage > rt.EstimatedUsage+1e-9 {
			t.Fatalf("seed %d: integrated estimate %v > two-step %v", seed, ri.EstimatedUsage, rt.EstimatedUsage)
		}
	}
}

// Batch optimization through the facade must agree with the sequential
// path per query, use the System's persistent plan cache across batches,
// and leave the live environment untouched. Run with -race.
func TestFacadeOptimizeBatch(t *testing.T) {
	sys := newSystem(t, 10)
	sets := [][]StreamID{{0, 1}, {1, 2}, {0, 1, 2}, {0, 1, 2, 3}}
	var qs []Query
	for i := 0; i < 24; i++ {
		qs = append(qs, Query{
			ID:       QueryID(i + 1),
			Consumer: sys.StubNodes()[(i*5)%len(sys.StubNodes())],
			Streams:  sets[i%len(sets)],
		})
	}
	seq := make([]*Result, len(qs))
	for i, q := range qs {
		res, err := sys.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = res
	}
	batch, err := sys.OptimizeBatch(qs, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if got, want := batch[i].Circuit.Plan.Signature(), seq[i].Circuit.Plan.Signature(); got != want {
			t.Fatalf("query %d: batch plan %s != sequential %s", i, got, want)
		}
		for s := range batch[i].Circuit.Services {
			if batch[i].Circuit.Services[s].Node != seq[i].Circuit.Services[s].Node {
				t.Fatalf("query %d service %d: batch node %d != sequential %d",
					i, s, batch[i].Circuit.Services[s].Node, seq[i].Circuit.Services[s].Node)
			}
		}
		if batch[i].EstimatedUsage != seq[i].EstimatedUsage {
			t.Fatalf("query %d: batch usage %v != sequential %v",
				i, batch[i].EstimatedUsage, seq[i].EstimatedUsage)
		}
	}
	// The second identical batch should be answered mostly from the
	// System's persistent cache.
	if _, err := sys.OptimizeBatch(qs, BatchOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	hits, _, entries := sys.PlanCacheStats()
	if hits == 0 || entries == 0 {
		t.Fatalf("persistent plan cache unused: hits=%d entries=%d", hits, entries)
	}
}

// Changing catalog statistics between batches must flush the plan
// cache: the old winning plan shape may no longer be optimal.
func TestFacadeBatchStatsChangeFlushesCache(t *testing.T) {
	sys := newSystem(t, 11)
	q := Query{ID: 1, Consumer: sys.StubNodes()[3], Streams: []StreamID{0, 1, 2}}
	qs := []Query{q, q, q, q}
	if _, err := sys.OptimizeBatch(qs, BatchOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetJoinSelectivity(0, 1, 0.05); err != nil {
		t.Fatal(err)
	}
	seq, err := sys.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := sys.OptimizeBatch(qs, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].FromCache {
		t.Fatal("first query after a statistics change was served from the stale cache")
	}
	for i := range batch {
		if batch[i].Circuit.Plan.Signature() != seq.Circuit.Plan.Signature() {
			t.Fatalf("query %d: batch plan %s != fresh sequential %s",
				i, batch[i].Circuit.Plan.Signature(), seq.Circuit.Plan.Signature())
		}
		if batch[i].EstimatedUsage != seq.EstimatedUsage {
			t.Fatalf("query %d: batch usage %v != fresh sequential %v",
				i, batch[i].EstimatedUsage, seq.EstimatedUsage)
		}
	}
}

// Rewriting through the facade must never increase total usage.
func TestFacadeRewrite(t *testing.T) {
	sys := newSystem(t, 9)
	q := Query{ID: 1, Consumer: sys.StubNodes()[3], Streams: []StreamID{0, 1, 2, 3}}
	res, err := sys.OptimizeTwoStep(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(res.Circuit); err != nil {
		t.Fatal(err)
	}
	before := sys.TotalUsage()
	stats, err := sys.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	if stats.CircuitsEvaluated != 1 {
		t.Fatalf("evaluated %d circuits", stats.CircuitsEvaluated)
	}
	if after := sys.TotalUsage(); after > before+1e-9 {
		t.Fatalf("rewrite increased usage %v -> %v", before, after)
	}
}

func TestEngineVirtualTimeEndToEnd(t *testing.T) {
	opts := smallOpts(9)
	opts.VirtualTime = true
	measure := func() Measurement {
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		if err := sys.AddStream(0, sys.StubNodes()[2], 50); err != nil {
			t.Fatal(err)
		}
		q := Query{ID: 1, Consumer: sys.StubNodes()[15], Streams: []StreamID{0}}
		res, err := sys.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFor(1); err == nil {
			t.Fatal("RunFor before StartEngine accepted")
		}
		if err := sys.StartEngine(); err != nil {
			t.Fatal(err)
		}
		run, err := sys.Run(res.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		// 30 simulated seconds, instant under virtual time.
		start := time.Now()
		if err := sys.RunFor(30); err != nil {
			t.Fatal(err)
		}
		if wall := time.Since(start); wall > 2*time.Second {
			t.Fatalf("virtual RunFor(30) took %v of wall time", wall)
		}
		m := run.Measure()
		if m.TuplesOut == 0 {
			t.Fatal("no tuples delivered under virtual time")
		}
		if m.SimSeconds < 29.999 || m.SimSeconds > 30.001 {
			t.Fatalf("SimSeconds = %v, want 30", m.SimSeconds)
		}
		if err := sys.StopRun(q.ID); err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := measure(), measure(); a != b {
		t.Fatalf("same-seed virtual facade runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestFacadeDataShardsBitIdentical pins the facade contract of
// Options.DataShards: the parallel data plane is an execution strategy
// only — measurements are bit-identical to the single-queue run for any
// shard count.
func TestFacadeDataShardsBitIdentical(t *testing.T) {
	measure := func(shards int) Measurement {
		opts := smallOpts(9)
		opts.VirtualTime = true
		opts.DataShards = shards
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		if err := sys.AddStream(0, sys.StubNodes()[2], 50); err != nil {
			t.Fatal(err)
		}
		q := Query{ID: 1, Consumer: sys.StubNodes()[15], Streams: []StreamID{0}}
		res, err := sys.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.StartEngine(); err != nil {
			t.Fatal(err)
		}
		run, err := sys.Run(res.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFor(30); err != nil {
			t.Fatal(err)
		}
		return run.Measure()
	}
	base := measure(1)
	if base.TuplesOut == 0 {
		t.Fatal("no tuples delivered")
	}
	for _, shards := range []int{2, 4} {
		if m := measure(shards); m != base {
			t.Fatalf("DataShards=%d diverged from single queue:\n%+v\n%+v", shards, m, base)
		}
	}
}

func TestFacadeDataShardsRequiresVirtualTime(t *testing.T) {
	opts := smallOpts(9)
	opts.DataShards = 4
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.StartEngine(); err == nil {
		t.Fatal("StartEngine accepted DataShards without VirtualTime")
	}
}

// adaptSystem deploys a few circuits on the virtual-time engine and
// overloads a host so adaptation has work.
func adaptSystem(t *testing.T, seed int64) (*System, []QueryID) {
	t.Helper()
	opts := smallOpts(seed)
	opts.VirtualTime = true
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	stubs := sys.StubNodes()
	for i := 0; i < 3; i++ {
		if err := sys.AddStream(StreamID(i), stubs[i*5], 50); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.StartEngine(); err != nil {
		t.Fatal(err)
	}
	var ids []QueryID
	var victim NodeID = -1
	for i, streams := range [][]StreamID{{0, 1}, {1, 2}, {0, 2}} {
		q := Query{ID: QueryID(i + 1), Consumer: stubs[(i*7+2)%len(stubs)], Streams: streams}
		res, err := sys.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Deploy(res.Circuit); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(res.Circuit); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, q.ID)
		if victim < 0 {
			for _, s := range res.Circuit.UnpinnedServices() {
				victim = s.Node
				break
			}
		}
	}
	if err := sys.RunFor(2); err != nil {
		t.Fatal(err)
	}
	if victim >= 0 {
		sys.SetBackgroundLoad(victim, 5.0)
	}
	return sys, ids
}

func TestFacadeAdaptMigratesLiveCircuits(t *testing.T) {
	sys, _ := adaptSystem(t, 11)
	plan, err := sys.PlanReoptimization()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 {
		t.Skip("no moves planned at this seed")
	}
	stats, err := sys.Adapt(AdaptOptions{Sweeps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d sweep stats, want 2", len(stats))
	}
	if stats[0].Migrated == 0 {
		t.Fatal("first sweep migrated nothing off an overloaded host")
	}
	if stats[0].DataPlane == 0 {
		t.Fatal("no live data-plane handoffs for running circuits")
	}
	if err := sys.RunFor(2); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeEvacuate(t *testing.T) {
	sys, _ := adaptSystem(t, 12)
	// Find a node hosting an unpinned service.
	var victim NodeID = -1
	for _, c := range sys.Deployment.Circuits() {
		for _, s := range c.UnpinnedServices() {
			if victim < 0 || s.Node < victim {
				victim = s.Node
			}
		}
	}
	if victim < 0 {
		t.Skip("nothing to evacuate")
	}
	st, err := sys.Evacuate([]NodeID{victim})
	if err != nil {
		t.Fatal(err)
	}
	if st.Migrated == 0 {
		t.Fatal("evacuation moved nothing")
	}
	for _, c := range sys.Deployment.Circuits() {
		for _, s := range c.UnpinnedServices() {
			if s.Node == victim {
				t.Fatalf("service still on evacuated node %d", victim)
			}
		}
	}
}

// TestFacadeCrashRepairEndToEnd drives the whole unplanned-failure
// pipeline through the facade: fault injection crashes an operator
// host, heartbeats feed the detector, and AdaptWithRepair re-places
// the stranded services onto live nodes — no Evacuate calls.
func TestFacadeCrashRepairEndToEnd(t *testing.T) {
	sys, _ := adaptSystem(t, 13)
	pinned := map[NodeID]bool{}
	for _, c := range sys.Deployment.Circuits() {
		for _, s := range c.Services {
			if s.Pinned {
				pinned[s.Node] = true
			}
		}
	}
	var victim NodeID = -1
	for _, c := range sys.Deployment.Circuits() {
		for _, s := range c.UnpinnedServices() {
			if !pinned[s.Node] && (victim < 0 || s.Node < victim) {
				victim = s.Node
			}
		}
	}
	if victim < 0 {
		t.Skip("no crashable operator host at this seed")
	}
	if _, _, err := sys.AdaptWithRepair(0, nil, AdaptOptions{}); err == nil {
		t.Fatal("AdaptWithRepair before StartFailureDetection accepted")
	}
	if _, err := sys.InstallFaults(FaultPlan{
		Seed:     13,
		DropProb: 0.01,
		Crashes:  []NodeCrash{{Node: victim, At: time.Second}},
	}); err != nil {
		t.Fatal(err)
	}
	det, err := sys.StartFailureDetection(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	stop, err := sys.StopAfter(6)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := sys.AdaptWithRepair(500*time.Millisecond, stop, AdaptOptions{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadNodes != 1 {
		t.Fatalf("DeadNodes = %d, want 1", rep.DeadNodes)
	}
	if rep.Repaired == 0 {
		t.Fatal("no services repaired after the crash")
	}
	if rep.CancelledCircuits != 0 {
		t.Fatalf("cancelled %d circuits; victim hosted no endpoint", rep.CancelledCircuits)
	}
	if dead := det.DeadNodes(); len(dead) != 1 || dead[0] != victim {
		t.Fatalf("detector dead set = %v, want [%d]", dead, victim)
	}
	for id, c := range sys.Deployment.Circuits() {
		for i, s := range c.Services {
			if s.Node == victim {
				t.Fatalf("q%d service %d still on crashed node %d", id, i, victim)
			}
		}
	}
}
