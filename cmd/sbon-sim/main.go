// Command sbon-sim runs ad-hoc SBON simulations: it generates a
// workload, optimizes and deploys every query with the chosen optimizer,
// optionally applies load churn with re-optimization sweeps, and prints
// deployment statistics.
//
// Usage:
//
//	sbon-sim -queries 20 -optimizer integrated
//	sbon-sim -optimizer multiquery -radius 50
//	sbon-sim -optimizer twostep -churn-steps 10
//
// With -batch N the command instead runs the concurrent batch-optimization
// scenario: N queries (drawn from -batch-distinct distinct shapes, so the
// plan cache is exercised) are optimized by a worker pool over one frozen
// snapshot, optionally compared against the sequential loop:
//
//	sbon-sim -batch 10000 -batch-distinct 250 -workers 8 -batch-compare
//
// With -execute the optimized circuits are additionally deployed on the
// stream engine and run for -sim-seconds of simulated time; -virtual-time
// runs them on the deterministic discrete-event clock, so even large
// overlays and long windows complete in (reproducible) milliseconds:
//
//	sbon-sim -queries 100 -execute -virtual-time -sim-seconds 30
//
// With -adapt N the deployment additionally runs N live adaptation
// sweeps under drifting background load: each sweep plans service
// migrations over the cost space and, combined with -execute, walks
// them through the engine's buffered zero-loss handoff while the
// circuits keep processing tuples:
//
//	sbon-sim -queries 40 -execute -virtual-time -adapt 4 -adapt-budget 16
//
// With -adapt-continuous the sweeps instead run as a clock-driven
// continuous loop of incremental re-optimizations: background load
// drifts between rounds via scheduled events, and each round consumes
// the environment's delta log, re-planning only the circuits the drift
// can affect. Requires -virtual-time (the loop and its drift schedule
// are discrete events):
//
//	sbon-sim -queries 40 -virtual-time -adapt 8 -adapt-continuous
//
// With -crash-frac (and optionally -drop-prob) the run becomes the
// unplanned-failure scenario: that fraction of nodes crashes without
// warning, staggered across the window, while every message rides
// through the seeded drop probability. Heartbeats feed the failure
// detector and the coordinator repairs affected circuits onto live
// nodes automatically — no Evacuate calls. Requires -execute
// -virtual-time; same seed reproduces the identical run:
//
//	sbon-sim -queries 40 -execute -virtual-time -crash-frac 0.05 -drop-prob 0.01
//
// Observability: -trace FILE writes the run's structured events as a
// Chrome trace-event file (load it in Perfetto or chrome://tracing),
// -trace-jsonl FILE writes the same events as JSON Lines,
// -trace-stream FILE streams the JSON Lines incrementally in constant
// memory (byte-identical to -trace-jsonl output; use it for very large
// runs where buffering every event is infeasible), and -metrics-dump
// prints one JSON report merging the overlay's metric registry with
// the trace to stdout. Traces cover optimizer decisions,
// migration phases, repair rounds, fault injections, and failure
// verdicts; under -virtual-time the serialized bytes are bit-identical
// for a fixed seed:
//
//	sbon-sim -queries 40 -execute -virtual-time -adapt 4 -trace out.json -metrics-dump
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/hourglass/sbon/internal/adapt"
	"github.com/hourglass/sbon/internal/failure"
	"github.com/hourglass/sbon/internal/metrics"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/stream"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
	"github.com/hourglass/sbon/internal/workload"
)

// traceSink gathers the observability flags and the tracer they imply.
// attach creates the tracer on the scenario's clock (so virtual-time
// runs stamp events deterministically); finish writes the requested
// exports once the run completes.
type traceSink struct {
	chrome string
	jsonl  string
	stream string
	dump   bool
	tr     *trace.Tracer
	// streamFile is the open -trace-stream destination; events are
	// written to it incrementally instead of buffered in memory.
	streamFile *os.File
}

func (s *traceSink) wanted() bool {
	return s.chrome != "" || s.jsonl != "" || s.stream != "" || s.dump
}

func (s *traceSink) attach(clk simtime.Clock) *trace.Tracer {
	if !s.wanted() {
		return nil
	}
	if s.tr == nil {
		s.tr = trace.New(clk)
		if s.stream != "" {
			f, err := os.Create(s.stream)
			if err != nil {
				fail(err)
			}
			s.streamFile = f
			s.tr.StreamJSONL(f)
		}
	}
	return s.tr
}

func (s *traceSink) finish(reg *metrics.Registry) {
	writeFile := func(path string, write func(*os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := write(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if s.streamFile != nil {
		if err := s.tr.Flush(); err != nil {
			s.streamFile.Close()
			fail(err)
		}
		if err := s.streamFile.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace: streamed JSONL -> %s (constant-memory; %d events buffered)\n", s.stream, s.tr.Len())
	}
	if s.chrome != "" {
		writeFile(s.chrome, func(f *os.File) error { return s.tr.WriteChromeTrace(f) })
		fmt.Printf("trace: %d events -> %s (Chrome trace-event format; open in Perfetto)\n", s.tr.Len(), s.chrome)
	}
	if s.jsonl != "" {
		writeFile(s.jsonl, func(f *os.File) error { return s.tr.WriteJSONL(f) })
		fmt.Printf("trace: %d events -> %s (JSON Lines)\n", s.tr.Len(), s.jsonl)
	}
	if s.dump {
		if reg == nil {
			reg = metrics.NewRegistry()
		}
		rep := metrics.Report{Label: "sbon-sim", Registry: reg}
		if s.tr != nil {
			rep.Trace = s.tr.WriteEventsJSON
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		fmt.Println()
	}
}

func main() {
	var (
		seed       = flag.Int64("seed", 1, "simulation seed")
		stubNodes  = flag.Int("stub-nodes", 12, "nodes per stub domain (12 => 592 total)")
		streams    = flag.Int("streams", 12, "published streams")
		queries    = flag.Int("queries", 20, "queries to optimize and deploy")
		optName    = flag.String("optimizer", "integrated", "integrated | twostep | multiquery")
		radius     = flag.Float64("radius", 50, "multi-query pruning radius (multiquery only; -1 = unpruned)")
		churnSteps = flag.Int("churn-steps", 0, "load-churn steps with re-optimization after deployment")
		useDHT     = flag.Bool("dht", true, "use the Hilbert-DHT catalog for physical mapping")

		batchN        = flag.Int("batch", 0, "run the batch scenario with this many queries (0 = classic deploy loop)")
		batchDistinct = flag.Int("batch-distinct", 250, "distinct query shapes the batch cycles through")
		workers       = flag.Int("workers", runtime.GOMAXPROCS(0), "batch worker goroutines")
		batchCompare  = flag.Bool("batch-compare", false, "also time the sequential Optimize loop for comparison")
		batchNoCache  = flag.Bool("batch-no-cache", false, "disable the plan cache in the batch scenario")

		execute     = flag.Bool("execute", false, "deploy the optimized circuits on the stream engine and measure the dataflow")
		virtualTime = flag.Bool("virtual-time", false, "run the engine on the deterministic virtual clock (instant, reproducible)")
		dataShards  = flag.Int("data-shards", 1, "execute the data plane on this many parallel event-queue shards, keyed to the optimizer's cost-space regions (requires -execute -virtual-time; results are bit-identical to 1)")
		simSeconds  = flag.Float64("sim-seconds", 10, "simulated measurement window for -execute")
		heartbeatMs = flag.Float64("heartbeat-ms", 500, "per-node heartbeat period in simulated ms for -execute (0 = off)")

		adaptSweeps = flag.Int("adapt", 0, "run this many live adaptation sweeps (with -execute: circuits migrate under traffic)")
		adaptBudget = flag.Int("adapt-budget", 16, "max migrations per adaptation sweep")
		adaptDrift  = flag.Float64("adapt-drift", 0.1, "fraction of nodes whose background load drifts before each sweep")
		adaptCont   = flag.Bool("adapt-continuous", false, "run adaptation as a continuous clock-driven loop of incremental sweeps (requires -virtual-time); -adapt N sets the rounds")
		adaptIntMs  = flag.Int("adapt-interval-ms", 500, "continuous adaptation interval (simulated milliseconds)")

		crashFrac = flag.Float64("crash-frac", 0, "fraction of nodes crashing unannounced mid-run; circuits repair automatically (requires -execute -virtual-time)")
		dropProb  = flag.Float64("drop-prob", 0, "ambient per-message drop probability for the failure scenario")

		traceFile   = flag.String("trace", "", "write the run's structured events to this file in Chrome trace-event format (Perfetto-loadable)")
		traceJSONL  = flag.String("trace-jsonl", "", "write the run's structured events to this file as JSON Lines")
		traceStream = flag.String("trace-stream", "", "stream the run's structured events to this file as JSON Lines incrementally (constant memory; for very large runs)")
		metricsDump = flag.Bool("metrics-dump", false, "print a JSON report merging the metric registry with the trace to stdout at exit")
	)
	flag.Parse()
	if *traceStream != "" && (*traceFile != "" || *traceJSONL != "" || *metricsDump) {
		// Streamed events are not retained in memory, so the buffered
		// exporters would emit empty output — reject the combination.
		fail(fmt.Errorf("-trace-stream cannot be combined with -trace, -trace-jsonl, or -metrics-dump"))
	}
	sink := &traceSink{chrome: *traceFile, jsonl: *traceJSONL, stream: *traceStream, dump: *metricsDump}

	topoCfg := topology.DefaultConfig()
	topoCfg.StubNodes = *stubNodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fail(err)
	}
	rng := rand.New(rand.NewSource(*seed * 3))
	sCfg := workload.DefaultStreamConfig()
	sCfg.NumStreams = *streams
	stats, err := workload.GenerateStats(topo, sCfg, rng)
	if err != nil {
		fail(err)
	}
	qCfg := workload.DefaultQueryConfig()
	qCfg.NumQueries = *queries
	if *batchN > 0 {
		qCfg.NumQueries = *batchDistinct
	}
	qs, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
	if err != nil {
		fail(err)
	}

	envCfg := optimizer.DefaultEnvConfig(*seed)
	envCfg.UseDHT = *useDHT
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("topology: %s\n", topo.ComputeStats())
	fmt.Printf("coordinates: %s\n", env.EmbeddingQuality)

	if *batchN > 0 {
		runBatchScenario(env, qs, *batchN, *workers, *batchCompare, *batchNoCache)
		return
	}

	reg := optimizer.NewRegistry()
	dep := optimizer.NewDeployment(env, reg)
	truth := optimizer.TrueLatency{Topo: topo}

	r := *radius
	if r < 0 {
		r = math.Inf(1)
	}
	optimize := func(q query.Query) (*optimizer.Result, error) {
		switch strings.ToLower(*optName) {
		case "integrated":
			return optimizer.NewIntegrated(env).Optimize(q)
		case "twostep":
			return optimizer.NewTwoStep(env).Optimize(q)
		case "multiquery":
			return optimizer.NewMultiQuery(env, reg, r).Optimize(q)
		default:
			return nil, fmt.Errorf("unknown optimizer %q", *optName)
		}
	}

	var totalPlans, totalReuse, totalExamined int
	var circuits []*optimizer.Circuit
	for _, q := range qs {
		res, err := optimize(q)
		if err != nil {
			fail(err)
		}
		if err := dep.Deploy(res.Circuit); err != nil {
			fail(err)
		}
		circuits = append(circuits, res.Circuit)
		totalPlans += res.PlansConsidered
		totalReuse += res.ReusedServices
		totalExamined += res.InstancesExamined
		fmt.Printf("q%-3d %-40s usage=%9.1f latency=%6.1fms plans=%2d reused=%d\n",
			q.ID, res.Circuit.Plan, res.Circuit.NetworkUsage(truth),
			res.Circuit.ConsumerLatency(truth), res.PlansConsidered, res.ReusedServices)
	}
	fmt.Printf("\ndeployed %d circuits: total usage %.1f KB·ms/s, load penalty %.2f\n",
		dep.NumDeployed(), dep.TotalUsage(truth), dep.TotalLoadPenalty())
	fmt.Printf("plans considered %d, services reused %d, registry instances examined %d, registered services %d\n",
		totalPlans, totalReuse, totalExamined, reg.Len())

	if *crashFrac > 0 || *dropProb > 0 {
		if !*execute || !*virtualTime {
			fail(fmt.Errorf("-crash-frac/-drop-prob require -execute -virtual-time: crashes, detection, and repair are discrete events"))
		}
		sink.finish(runFailureScenario(topo, env, dep, circuits, truth, *crashFrac, *dropProb, *simSeconds, *seed, sink))
		return
	}

	if *adaptSweeps > 0 {
		if *adaptCont && !*virtualTime {
			fail(fmt.Errorf("-adapt-continuous requires -virtual-time: the loop and its drift schedule are discrete events"))
		}
		sink.finish(runAdaptation(topo, env, dep, circuits, truth,
			*adaptSweeps, *adaptBudget, *adaptDrift, *execute, *virtualTime, *simSeconds, *seed,
			*adaptCont, *adaptIntMs, sink))
		return
	}

	if *dataShards > 1 && (!*execute || !*virtualTime) {
		fail(fmt.Errorf("-data-shards requires -execute -virtual-time: only the discrete-event data plane shards"))
	}

	var runReg *metrics.Registry
	if *execute {
		runReg = runDataPlane(topo, env, circuits, truth, *virtualTime, *simSeconds, *heartbeatMs, *seed, *dataShards, sink)
	}

	if *churnSteps > 0 {
		fmt.Printf("\nchurn + re-optimization (%d steps):\n", *churnSteps)
		ro := optimizer.NewReoptimizer(dep)
		ro.Tracer = sink.attach(simtime.Real())
		churnRng := rand.New(rand.NewSource(*seed * 5))
		churn := workload.Churn{LoadFraction: 0.25, LoadMax: 0.95}
		for step := 1; step <= *churnSteps; step++ {
			workload.ApplyChurn(topo, env, churn, churnRng)
			st, err := ro.Step()
			if err != nil {
				fail(err)
			}
			fmt.Printf("step %2d: migrations=%2d usage=%9.1f load-penalty=%8.2f\n",
				step, st.Migrations, dep.TotalUsage(truth), dep.TotalLoadPenalty())
		}
	}
	sink.finish(runReg)
}

// runDataPlane deploys the circuits on the stream engine and measures
// the executing dataflow against the analytic model. With virtual time
// the whole window is a deterministic discrete-event run that finishes
// in milliseconds regardless of the simulated duration.
func runDataPlane(topo *topology.Topology, env *optimizer.Env, circuits []*optimizer.Circuit, truth optimizer.TrueLatency,
	virtual bool, simSeconds, heartbeatMs float64, seed int64, dataShards int, sink *traceSink) *metrics.Registry {
	netCfg := overlay.Config{TimeScale: 50 * time.Microsecond, InboxSize: 8192}
	var clk simtime.Clock = simtime.Real()
	if virtual {
		vclk := simtime.NewVirtual()
		defer vclk.Drive()()
		clk = vclk
		netCfg = overlay.Config{TimeScale: time.Millisecond, InboxSize: 8192, Clock: vclk}
		if dataShards > 1 {
			k := optimizer.RoundShards(dataShards)
			laneOf, err := optimizer.NodeRegions(env, k)
			if err != nil {
				fail(err)
			}
			lookahead := time.Duration(topo.MinEdgeLatency() * float64(netCfg.TimeScale))
			if lookahead <= 0 {
				fail(fmt.Errorf("topology has no positive edge latency — data-plane sharding needs a conservative lookahead"))
			}
			vclk.ShardLanes(laneOf, k, lookahead)
			netCfg.DataShards = k
			netCfg.ShardOf = laneOf
			fmt.Printf("\ndata plane sharded across %d parallel event queues (lookahead %v)\n", k, lookahead)
		}
	}
	tr := sink.attach(clk)
	net := overlay.NewNetwork(topo, netCfg)
	net.SetTracer(tr)
	net.Start()
	defer net.Stop()
	ecfg := stream.DefaultEngineConfig()
	ecfg.Seed = seed
	ecfg.Tracer = tr
	engine := stream.NewEngine(net, topo, ecfg)
	defer engine.Close()

	mode := "wall-clock"
	if virtual {
		mode = "virtual-time"
	}
	fmt.Printf("\nexecuting %d circuits on the %s engine for %.1f simulated seconds...\n",
		len(circuits), mode, simSeconds)

	var analyticUsage, analyticRate float64
	type deployed struct {
		c   *optimizer.Circuit
		run *stream.Running
	}
	var runs []deployed
	for _, c := range circuits {
		// Circuits are deployed in optimization order, so a circuit
		// reusing another's services always finds its provider running.
		run, err := engine.Deploy(c)
		if err != nil {
			fail(err)
		}
		runs = append(runs, deployed{c: c, run: run})
		analyticUsage += c.NetworkUsage(truth)
		analyticRate += c.Plan.OutRate
	}
	if st := engine.SharedStats(); st.Instances > 0 {
		fmt.Printf("shared execution: %d instances feed %d subscriber circuits (no duplicated operators)\n",
			st.Instances, st.Subscribers)
	}
	var hb *overlay.Heartbeats
	if heartbeatMs > 0 {
		hb = net.StartHeartbeats(time.Duration(heartbeatMs*float64(netCfg.TimeScale)), 0.05)
	}
	wallStart := time.Now()
	clk.Sleep(time.Duration(simSeconds * 1000 * float64(netCfg.TimeScale)))
	wall := time.Since(wallStart)

	var measuredUsage, measuredRate float64
	tuples := 0
	for _, d := range runs {
		m := d.run.Measure()
		measuredUsage += m.NetworkUsage
		measuredRate += m.OutRateKBs
		tuples += m.TuplesOut
	}
	if hb != nil {
		hb.Stop()
	}
	fmt.Printf("delivered %d tuples, %.0f overlay messages, %.0f heartbeats in %v of wall time\n",
		tuples, net.Metrics.Counter("msgs.sent").Value(), net.Metrics.Counter("hb.recv").Value(), wall.Round(time.Millisecond))
	fmt.Printf("aggregate rate:  analytic %9.1f KB/s    measured %9.1f KB/s  (ratio %.3f)\n",
		analyticRate, measuredRate, measuredRate/analyticRate)
	fmt.Printf("aggregate usage: analytic %9.1f KB·ms/s measured %9.1f KB·ms/s (ratio %.3f)\n",
		analyticUsage, measuredUsage, measuredUsage/analyticUsage)
	return net.Metrics
}

// runAdaptation runs sweep→migrate→settle rounds over the deployed
// circuits with drifting background load. With execute the circuits run
// on the stream engine and every migration is a live buffered handoff;
// without it the moves commit on the control plane only.
func runAdaptation(topo *topology.Topology, env *optimizer.Env, dep *optimizer.Deployment,
	circuits []*optimizer.Circuit, truth optimizer.TrueLatency,
	sweeps, budget int, drift float64, execute, virtual bool, simSeconds float64, seed int64,
	continuous bool, intervalMs int, sink *traceSink) *metrics.Registry {

	var engine *stream.Engine
	var net *overlay.Network
	var clk simtime.Clock = simtime.Real()
	var vclk *simtime.VirtualClock
	if virtual {
		vclk = simtime.NewVirtual()
		defer vclk.Drive()()
		clk = vclk
	}
	tr := sink.attach(clk)
	var runs []*stream.Running
	if execute {
		netCfg := overlay.Config{TimeScale: 50 * time.Microsecond, InboxSize: 8192}
		if virtual {
			netCfg = overlay.Config{TimeScale: time.Millisecond, InboxSize: 8192, Clock: vclk}
		}
		net = overlay.NewNetwork(topo, netCfg)
		net.SetTracer(tr)
		net.Start()
		defer net.Stop()
		ecfg := stream.DefaultEngineConfig()
		ecfg.Seed = seed
		ecfg.Tracer = tr
		engine = stream.NewEngine(net, topo, ecfg)
		defer engine.Close()
		for _, c := range circuits {
			run, err := engine.Deploy(c)
			if err != nil {
				fail(err)
			}
			runs = append(runs, run)
		}
		clk.Sleep(time.Duration(simSeconds * 1000 * float64(netCfg.TimeScale)))
	}

	co := &adapt.Coordinator{Dep: dep, Engine: engine, Clock: clk, Budget: budget, Tracer: tr}
	driftRng := rand.New(rand.NewSource(seed * 11))
	churn := workload.Churn{LoadFraction: drift, LoadMax: 0.9}
	mode := "control-plane only"
	if engine != nil {
		mode = fmt.Sprintf("%d circuits executing", len(runs))
	}
	if continuous {
		interval := time.Duration(intervalMs) * time.Millisecond
		fmt.Printf("\ncontinuous adaptation: %d rounds every %v, budget %d, drift %.0f%% (%s)\n",
			sweeps, interval, budget, drift*100, mode)
		// Drift lands mid-interval as scheduled events; each round's
		// incremental sweep then consumes exactly that delta. Stop fires
		// (deterministically, through the virtual clock) after the last
		// round.
		for i := 0; i < sweeps; i++ {
			clk.AfterFunc(time.Duration(i)*interval+interval/2, func() {
				workload.ApplyChurn(topo, env, churn, driftRng)
			})
		}
		stop := make(chan struct{})
		clk.AfterFunc(time.Duration(sweeps)*interval+interval/4, func() { vclk.Signal(stop) })
		rs, err := co.Run(interval, stop)
		if err != nil {
			fail(err)
		}
		fmt.Printf("rounds=%d full-sweeps=%d migrated=%d services-evaluated=%d usage=%11.1f\n",
			rs.Sweeps, rs.FullSweeps, rs.Migrated, rs.ServicesEvaluated, dep.TotalUsage(truth))
		fmt.Printf("last round: dirty-nodes=%d affected-circuits=%d planned=%d migrated=%d\n",
			rs.Last.DirtyNodes, rs.Last.AffectedCircuits, rs.Last.Planned, rs.Last.Migrated)
		if net != nil {
			fmt.Printf("loss counters: unrouted=%.0f data-to-dead=%.0f (must be 0)\n",
				net.Metrics.Counter("msgs.unrouted").Value(), net.Metrics.Counter("msgs.down_dropped").Value())
			return net.Metrics
		}
		return nil
	}

	fmt.Printf("\nadaptation: %d sweeps, budget %d, drift %.0f%% (%s)\n",
		sweeps, budget, drift*100, mode)
	for i := 1; i <= sweeps; i++ {
		workload.ApplyChurn(topo, env, churn, driftRng)
		st, err := co.Sweep(nil)
		if err != nil {
			fail(err)
		}
		settle := st.SettleDuration
		if net != nil {
			settle = time.Duration(net.SimMillis(st.SettleDuration)) * time.Millisecond
		}
		fmt.Printf("sweep %2d: planned=%2d migrated=%2d data-plane=%2d buffered=%3d forwarded=%2d settle=%8v usage=%11.1f\n",
			i, st.Planned, st.Migrated, st.DataPlane, st.Buffered, st.Forwarded,
			settle, dep.TotalUsage(truth))
	}
	if net != nil {
		fmt.Printf("loss counters: unrouted=%.0f data-to-dead=%.0f (must be 0)\n",
			net.Metrics.Counter("msgs.unrouted").Value(), net.Metrics.Counter("msgs.down_dropped").Value())
		return net.Metrics
	}
	return nil
}

// runFailureScenario executes the circuits under ambient message loss
// while a fraction of the nodes crashes unannounced, staggered across
// the first half of the window. Heartbeats feed the failure detector
// and the coordinator's repair loop re-places every affected service
// onto live nodes automatically; the scenario reports repair activity
// and the bounded loss counters. Deterministic for a given seed.
func runFailureScenario(topo *topology.Topology, env *optimizer.Env, dep *optimizer.Deployment,
	circuits []*optimizer.Circuit, truth optimizer.TrueLatency,
	crashFrac, dropProb, simSeconds float64, seed int64, sink *traceSink) *metrics.Registry {

	vclk := simtime.NewVirtual()
	defer vclk.Drive()()
	tr := sink.attach(vclk)
	net := overlay.NewNetwork(topo, overlay.Config{TimeScale: time.Millisecond, InboxSize: 8192, Clock: vclk})
	net.SetTracer(tr)
	net.Start()
	defer net.Stop()
	ecfg := stream.DefaultEngineConfig()
	ecfg.Seed = seed
	ecfg.Tracer = tr
	engine := stream.NewEngine(net, topo, ecfg)
	defer engine.Close()
	var runs []*stream.Running
	for _, c := range circuits {
		run, err := engine.Deploy(c)
		if err != nil {
			fail(err)
		}
		runs = append(runs, run)
	}

	// Victims: non-endpoint nodes only — a dead pinned producer or
	// consumer cancels its circuit by definition; this scenario measures
	// repair.
	endpoint := map[topology.NodeID]bool{}
	for _, c := range circuits {
		for _, s := range c.Services {
			if s.Pinned {
				endpoint[s.Node] = true
			}
		}
	}
	var candidates []topology.NodeID
	for i := 0; i < topo.NumNodes(); i++ {
		if n := topology.NodeID(i); !endpoint[n] {
			candidates = append(candidates, n)
		}
	}
	vrng := rand.New(rand.NewSource(seed * 13))
	vrng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	crashCount := int(crashFrac*float64(topo.NumNodes()) + 0.5)
	if crashCount > len(candidates) {
		crashCount = len(candidates)
	}
	victims := candidates[:crashCount]
	warmup := time.Duration(simSeconds/4*1000) * time.Millisecond
	spread := warmup
	crashes := make([]overlay.NodeCrash, len(victims))
	for i, n := range victims {
		at := warmup
		if len(victims) > 1 {
			at += time.Duration(int64(spread) * int64(i) / int64(len(victims)-1))
		}
		crashes[i] = overlay.NodeCrash{Node: n, At: at}
	}
	fi := net.InstallFaults(overlay.FaultPlan{Seed: seed, DropProb: dropProb, Crashes: crashes})
	defer fi.Stop()

	beat := 200 * time.Millisecond
	hb := net.StartHeartbeatsOpts(beat, 0.05, overlay.HeartbeatOpts{SkipDownTargets: true})
	dcfg := failure.DefaultConfig(beat)
	dcfg.Tracer = tr
	det := failure.New(net, dcfg)
	defer func() { det.Stop(); hb.Stop() }()
	co := &adapt.Coordinator{
		Dep: dep, Engine: engine, Clock: vclk,
		Threshold: 0.3, TicketTTL: 5 * time.Second,
		Tracer: tr,
	}

	usageBefore := dep.TotalUsage(truth)
	fmt.Printf("\nfailure scenario: crashing %d/%d nodes (%.1f%%) under %.1f%% message loss over %.1f simulated seconds\n",
		len(victims), topo.NumNodes(), 100*float64(len(victims))/float64(topo.NumNodes()), 100*dropProb, simSeconds)
	stop := make(chan struct{})
	vclk.AfterFunc(time.Duration(simSeconds*1000)*time.Millisecond, func() { vclk.Signal(stop) })
	wallStart := time.Now()
	rs, rep, err := co.RunWithRepair(det, 500*time.Millisecond, stop)
	if err != nil {
		fail(err)
	}
	for _, run := range runs {
		run.HaltProducers()
	}
	vclk.Sleep(time.Second)
	wall := time.Since(wallStart)

	var produced, delivered int
	for _, run := range runs {
		produced += run.TuplesProduced()
		delivered += run.Measure().TuplesOut
	}
	fmt.Printf("detector: %d dead confirmed; repair: %d services re-placed (%d zombie, %d adopted), %d circuits cancelled, %d moves aborted\n",
		rep.DeadNodes, rep.Repaired, rep.ZombieRepaired, rep.Adopted, rep.CancelledCircuits, rep.Aborted)
	fmt.Printf("adaptation: %d rounds, %d migrations alongside repair\n", rs.Sweeps, rs.Migrated)
	fmt.Printf("bounded loss: %.0f injector-dropped + %.0f at-dead-nodes + %.0f unrouted + %d handoff-buffered; state lost %.0f KB (produced %d, delivered %d)\n",
		net.Metrics.Counter("faults.dropped").Value(), net.Metrics.Counter("msgs.down_dropped").Value(),
		net.Metrics.Counter("msgs.unrouted").Value(), rep.BufferedLost, rep.StateLostKB, produced, delivered)
	fmt.Printf("network usage: %.1f pre-crash vs %.1f post-repair; wall time %v\n",
		usageBefore, dep.TotalUsage(truth), wall.Round(time.Millisecond))
	for _, n := range victims {
		for id, c := range dep.Circuits() {
			for i, s := range c.Services {
				if s.Node == n {
					fail(fmt.Errorf("q%d service %d still placed on crashed node %d", id, i, n))
				}
			}
		}
	}
	fmt.Printf("all deployed services verified off the crashed nodes (zero manual evacuations)\n")
	_ = env
	return net.Metrics
}

// runBatchScenario tiles the distinct query shapes out to n queries and
// optimizes them all with the concurrent batch path, reporting throughput
// and plan-cache effectiveness, optionally against the sequential loop.
func runBatchScenario(env *optimizer.Env, distinct []query.Query, n, workers int, compare, noCache bool) {
	if len(distinct) == 0 {
		fail(fmt.Errorf("batch scenario has no distinct queries"))
	}
	qs := make([]query.Query, n)
	for i := range qs {
		qs[i] = distinct[i%len(distinct)]
		qs[i].ID = query.QueryID(i + 1)
	}
	fmt.Printf("\nbatch scenario: %d queries (%d distinct shapes), %d workers, cache=%v\n",
		n, len(distinct), workers, !noCache)
	ix := env.CostIndex()
	fmt.Printf("cost index: %d points, epoch %d (shared lock-free by batch workers)\n",
		ix.Len(), ix.Version())

	cache := optimizer.NewPlanCache()
	opts := optimizer.BatchOptions{Workers: workers, Cache: cache, NoCache: noCache}
	start := time.Now()
	results, err := optimizer.OptimizeBatch(env, qs, opts)
	if err != nil {
		fail(err)
	}
	batchDur := time.Since(start)

	var usage float64
	var plans, cached int
	for i := range results {
		usage += results[i].EstimatedUsage
		plans += results[i].PlansConsidered
		if results[i].FromCache {
			cached++
		}
	}
	hits, misses := cache.Stats()
	fmt.Printf("batch:      %v  (%.0f queries/s)\n", batchDur, float64(n)/batchDur.Seconds())
	fmt.Printf("estimated usage Σ %.1f, plans considered %d, cache hits %d / misses %d (%.1f%% of queries answered from cache)\n",
		usage, plans, hits, misses, 100*float64(cached)/float64(n))

	if compare {
		start = time.Now()
		var seqUsage float64
		for _, q := range qs {
			res, err := optimizer.NewIntegrated(env).Optimize(q)
			if err != nil {
				fail(err)
			}
			seqUsage += res.EstimatedUsage
		}
		seqDur := time.Since(start)
		fmt.Printf("sequential: %v  (%.0f queries/s)  speedup %.2fx\n",
			seqDur, float64(n)/seqDur.Seconds(), seqDur.Seconds()/batchDur.Seconds())
		if math.Abs(seqUsage-usage) > 1e-6*math.Max(1, math.Abs(seqUsage)) {
			fail(fmt.Errorf("batch usage Σ %.6f diverges from sequential Σ %.6f", usage, seqUsage))
		}
		fmt.Printf("batch and sequential agree on Σ estimated usage (%.1f)\n", usage)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sbon-sim: %v\n", err)
	os.Exit(1)
}
