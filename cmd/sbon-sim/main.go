// Command sbon-sim runs ad-hoc SBON simulations: it generates a
// workload, optimizes and deploys every query with the chosen optimizer,
// optionally applies load churn with re-optimization sweeps, and prints
// deployment statistics.
//
// Usage:
//
//	sbon-sim -queries 20 -optimizer integrated
//	sbon-sim -optimizer multiquery -radius 50
//	sbon-sim -optimizer twostep -churn-steps 10
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/workload"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "simulation seed")
		stubNodes  = flag.Int("stub-nodes", 12, "nodes per stub domain (12 => 592 total)")
		streams    = flag.Int("streams", 12, "published streams")
		queries    = flag.Int("queries", 20, "queries to optimize and deploy")
		optName    = flag.String("optimizer", "integrated", "integrated | twostep | multiquery")
		radius     = flag.Float64("radius", 50, "multi-query pruning radius (multiquery only; -1 = unpruned)")
		churnSteps = flag.Int("churn-steps", 0, "load-churn steps with re-optimization after deployment")
		useDHT     = flag.Bool("dht", true, "use the Hilbert-DHT catalog for physical mapping")
	)
	flag.Parse()

	topoCfg := topology.DefaultConfig()
	topoCfg.StubNodes = *stubNodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fail(err)
	}
	rng := rand.New(rand.NewSource(*seed * 3))
	sCfg := workload.DefaultStreamConfig()
	sCfg.NumStreams = *streams
	stats, err := workload.GenerateStats(topo, sCfg, rng)
	if err != nil {
		fail(err)
	}
	qCfg := workload.DefaultQueryConfig()
	qCfg.NumQueries = *queries
	qs, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
	if err != nil {
		fail(err)
	}

	envCfg := optimizer.DefaultEnvConfig(*seed)
	envCfg.UseDHT = *useDHT
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("topology: %s\n", topo.ComputeStats())
	fmt.Printf("coordinates: %s\n", env.EmbeddingQuality)

	reg := optimizer.NewRegistry()
	dep := optimizer.NewDeployment(env, reg)
	truth := optimizer.TrueLatency{Topo: topo}

	r := *radius
	if r < 0 {
		r = math.Inf(1)
	}
	optimize := func(q query.Query) (*optimizer.Result, error) {
		switch strings.ToLower(*optName) {
		case "integrated":
			return optimizer.NewIntegrated(env).Optimize(q)
		case "twostep":
			return optimizer.NewTwoStep(env).Optimize(q)
		case "multiquery":
			return optimizer.NewMultiQuery(env, reg, r).Optimize(q)
		default:
			return nil, fmt.Errorf("unknown optimizer %q", *optName)
		}
	}

	var totalPlans, totalReuse, totalExamined int
	for _, q := range qs {
		res, err := optimize(q)
		if err != nil {
			fail(err)
		}
		if err := dep.Deploy(res.Circuit); err != nil {
			fail(err)
		}
		totalPlans += res.PlansConsidered
		totalReuse += res.ReusedServices
		totalExamined += res.InstancesExamined
		fmt.Printf("q%-3d %-40s usage=%9.1f latency=%6.1fms plans=%2d reused=%d\n",
			q.ID, res.Circuit.Plan, res.Circuit.NetworkUsage(truth),
			res.Circuit.ConsumerLatency(truth), res.PlansConsidered, res.ReusedServices)
	}
	fmt.Printf("\ndeployed %d circuits: total usage %.1f KB·ms/s, load penalty %.2f\n",
		dep.NumDeployed(), dep.TotalUsage(truth), dep.TotalLoadPenalty())
	fmt.Printf("plans considered %d, services reused %d, registry instances examined %d, registered services %d\n",
		totalPlans, totalReuse, totalExamined, reg.Len())

	if *churnSteps > 0 {
		fmt.Printf("\nchurn + re-optimization (%d steps):\n", *churnSteps)
		ro := optimizer.NewReoptimizer(dep)
		churnRng := rand.New(rand.NewSource(*seed * 5))
		churn := workload.Churn{LoadFraction: 0.25, LoadMax: 0.95}
		for step := 1; step <= *churnSteps; step++ {
			workload.ApplyChurn(topo, env, churn, churnRng)
			st, err := ro.Step()
			if err != nil {
				fail(err)
			}
			fmt.Printf("step %2d: migrations=%2d usage=%9.1f load-penalty=%8.2f\n",
				step, st.Migrations, dep.TotalUsage(truth), dep.TotalLoadPenalty())
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sbon-sim: %v\n", err)
	os.Exit(1)
}
