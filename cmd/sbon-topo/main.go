// Command sbon-topo generates transit-stub topologies, reports their
// statistics, embeds Vivaldi coordinates, and exports CSVs for
// inspection or plotting.
//
// Usage:
//
//	sbon-topo -seed 7 -stats
//	sbon-topo -stub-nodes 12 -nodes-csv nodes.csv -edges-csv edges.csv
//	sbon-topo -embed -rounds 40
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "generator seed")
		domains   = flag.Int("transit-domains", 4, "transit domains")
		tnodes    = flag.Int("transit-nodes", 4, "transit nodes per domain")
		stubs     = flag.Int("stubs-per-transit", 3, "stub domains per transit node")
		stubNodes = flag.Int("stub-nodes", 12, "nodes per stub domain")
		stats     = flag.Bool("stats", true, "print topology statistics")
		nodesCSV  = flag.String("nodes-csv", "", "write node table to this file")
		edgesCSV  = flag.String("edges-csv", "", "write edge table to this file")
		embed     = flag.Bool("embed", false, "embed Vivaldi coordinates and report error")
		rounds    = flag.Int("rounds", 40, "Vivaldi rounds for -embed")
		embedDims = flag.Int("dims", 2, "Vivaldi dimensions for -embed")
	)
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.TransitDomains = *domains
	cfg.TransitNodes = *tnodes
	cfg.StubsPerTransit = *stubs
	cfg.StubNodes = *stubNodes

	topo, err := topology.Generate(cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fail(err)
	}
	if *stats {
		fmt.Println(topo.ComputeStats())
	}
	if *nodesCSV != "" {
		if err := writeTo(*nodesCSV, topo.WriteNodesCSV); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *nodesCSV)
	}
	if *edgesCSV != "" {
		if err := writeTo(*edgesCSV, topo.WriteEdgesCSV); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *edgesCSV)
	}
	if *embed {
		vcfg := vivaldi.DefaultConfig()
		vcfg.Dims = *embedDims
		m := topo.LatencyMatrix()
		rng := rand.New(rand.NewSource(*seed + 1))
		emb, err := vivaldi.EmbedMatrix(m, vcfg, *rounds, 4, rng)
		if err != nil {
			fail(err)
		}
		q := emb.Evaluate(func(i, j int) float64 { return m[i][j] }, 5000, rng)
		fmt.Printf("vivaldi %d-D after %d rounds: %s\n", *embedDims, *rounds, q)
	}
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sbon-topo: %v\n", err)
	os.Exit(1)
}
