// Command sbon-exp regenerates every figure of the paper (F1–F4) and the
// ablation experiments (X1–X8) as text tables, optionally exporting CSVs
// for plotting.
//
// Usage:
//
//	sbon-exp                     # run everything at full (paper) scale
//	sbon-exp -run fig1,fig4      # selected experiments
//	sbon-exp -scale small        # fast, reduced-size run
//	sbon-exp -outdir results/    # also write one CSV per experiment
//	sbon-exp -list               # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hourglass/sbon/internal/exp"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs (empty = all)")
		scale   = flag.String("scale", "full", "experiment scale: full | small")
		outDir  = flag.String("outdir", "", "directory for CSV exports (optional)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Println(e.ID)
		}
		return
	}

	var s exp.Scale
	switch strings.ToLower(*scale) {
	case "full":
		s = exp.Full
	case "small":
		s = exp.Small
	default:
		fmt.Fprintf(os.Stderr, "sbon-exp: unknown scale %q (want full or small)\n", *scale)
		os.Exit(2)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "sbon-exp: %v\n", err)
			os.Exit(1)
		}
	}

	var ids []string
	if *runList != "" {
		ids = strings.Split(*runList, ",")
	}
	if err := exp.Run(os.Stdout, ids, exp.RunOptions{Scale: s, OutDir: *outDir}); err != nil {
		fmt.Fprintf(os.Stderr, "sbon-exp: %v\n", err)
		os.Exit(1)
	}
}
