package sbon_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	sbon "github.com/hourglass/sbon"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
)

// shardScaleSystem builds the fixture for the sharded-vs-global
// comparison tests: the paper-scale topology with four streams.
func shardScaleSystem(t *testing.T) *sbon.System {
	t.Helper()
	sys, err := sbon.New(sbon.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	stubs := sys.StubNodes()
	for i := 0; i < 4; i++ {
		if err := sys.AddStream(sbon.StreamID(i), stubs[i*140], 100); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func shardScaleWorkload(sys *sbon.System, n int) []sbon.Query {
	sets := [][]sbon.StreamID{{0, 1}, {1, 2}, {2, 3}, {0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3}}
	stubs := sys.StubNodes()
	qs := make([]sbon.Query, n)
	for i := range qs {
		qs[i] = sbon.Query{
			ID:       sbon.QueryID(i + 1),
			Consumer: stubs[(i*7)%32],
			Streams:  sets[i%len(sets)],
		}
	}
	return qs
}

// TestShardedBatchEquivalence is the facade-level shard-vs-global check:
// identical circuits and usage from OptimizeBatchSharded and
// OptimizeBatch on the same System.
func TestShardedBatchEquivalence(t *testing.T) {
	sys := shardScaleSystem(t)
	qs := shardScaleWorkload(sys, 200)
	want, err := sys.OptimizeBatch(qs, sbon.BatchOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := sys.OptimizeBatchSharded(qs, sbon.ShardedBatchOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 8 {
		t.Fatalf("stats.Shards = %d", stats.Shards)
	}
	for i := range qs {
		if got[i].EstimatedUsage != want[i].EstimatedUsage {
			t.Fatalf("query %d: estimated usage %v (sharded) vs %v (global)", i, got[i].EstimatedUsage, want[i].EstimatedUsage)
		}
		for s := range got[i].Circuit.Services {
			if got[i].Circuit.Services[s].Node != want[i].Circuit.Services[s].Node {
				t.Fatalf("query %d service %d: node %d (sharded) vs %d (global)",
					i, s, got[i].Circuit.Services[s].Node, want[i].Circuit.Services[s].Node)
			}
		}
	}
}

// TestShardedBatchSpeedupMultiCore asserts the headline scaling claim —
// sharded batch ≥4x the single-pool path — on hosts with at least 8
// cores (the regime the claim is scoped to; single-core CI runs skip).
// Fresh caches on both sides, best of three runs each to damp noise.
func TestShardedBatchSpeedupMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.NumCPU() < 8 {
		t.Skipf("need >= 8 cores for the scaling claim, have %d", runtime.NumCPU())
	}
	sys := shardScaleSystem(t)
	qs := shardScaleWorkload(sys, 8000)

	best := func(run func() error) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if err := run(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}

	single := best(func() error {
		_, err := sys.OptimizeBatch(qs, sbon.BatchOptions{Cache: optimizer.NewPlanCache()})
		return err
	})
	sharded := best(func() error {
		_, _, err := sys.OptimizeBatchSharded(qs, sbon.ShardedBatchOptions{
			Shards: 8, Caches: optimizer.NewShardedPlanCache(8),
		})
		return err
	})

	ratio := float64(single) / float64(sharded)
	t.Logf("single-pool %v, sharded %v, speedup %.2fx on %d cores", single, sharded, ratio, runtime.NumCPU())
	if ratio < 4 {
		t.Fatalf("sharded speedup %.2fx < 4x on %d cores", ratio, runtime.NumCPU())
	}
}

// dataPlaneWall drives full-population heartbeats on a ~16k-node
// topology for two simulated seconds and returns the wall time of the
// drain — the data-plane analogue of the batch timing above. Lanes are
// contiguous id blocks; topology ids are grouped by stub domain, so
// blocks approximate the cost-space locality the Hilbert regions give
// the real scenarios.
func dataPlaneWall(t *testing.T, shards int) time.Duration {
	t.Helper()
	topoCfg := topology.DefaultConfig()
	topoCfg.TransitDomains = 8
	topoCfg.TransitNodes = 8
	topoCfg.StubsPerTransit = 50
	topoCfg.StubNodes = 40 // 64 + 8·50·40 = 16064 nodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.EnableSparseLatency(); err != nil {
		t.Fatal(err)
	}
	n := topo.NumNodes()
	clk := simtime.NewVirtual()
	cfg := overlay.Config{TimeScale: time.Millisecond, InboxSize: 8192, Clock: clk}
	if shards > 1 {
		laneOf := make([]int32, n)
		for i := range laneOf {
			laneOf[i] = int32(i * shards / n)
		}
		clk.ShardLanes(laneOf, shards, time.Duration(topo.MinEdgeLatency()*float64(cfg.TimeScale)))
		cfg.DataShards = shards
		cfg.ShardOf = laneOf
	}
	release := clk.Drive()
	net := overlay.NewNetwork(topo, cfg)
	net.Start()
	hb := net.StartHeartbeats(100*time.Millisecond, 0.05)
	start := time.Now()
	clk.Sleep(2 * time.Second)
	wall := time.Since(start)
	hb.Stop()
	net.Stop()
	release()
	return wall
}

// TestShardedDataPlaneSpeedupMultiCore asserts the event-kernel scaling
// claim — 16 parallel event queues ≥4x the single queue on the same
// traffic — on hosts with at least 8 cores (single-core CI runs skip,
// where the windows serialize and the two planes are within noise).
func TestShardedDataPlaneSpeedupMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.NumCPU() < 8 {
		t.Skipf("need >= 8 cores for the scaling claim, have %d", runtime.NumCPU())
	}
	best := func(shards int) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			if d := dataPlaneWall(t, shards); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	single := best(1)
	sharded := best(16)
	ratio := float64(single) / float64(sharded)
	t.Logf("single queue %v, 16 shards %v, speedup %.2fx on %d cores", single, sharded, ratio, runtime.NumCPU())
	if ratio < 4 {
		t.Fatalf("sharded data plane speedup %.2fx < 4x on %d cores", ratio, runtime.NumCPU())
	}
}
