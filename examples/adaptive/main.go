// Adaptive execution: a circuit is optimized, deployed onto the
// overlay runtime, and run with real tuples. The measured delivery
// rate, latency, and network usage are compared against the
// optimizer's analytic model — then the environment shifts and the
// system re-optimizes *while the circuit keeps running*: the operator
// migrates to a better host through the engine's buffered handoff with
// zero tuple loss. The engine runs on the virtual clock, so the
// simulated measurement windows complete instantly and the measured
// numbers are identical on every run.
package main

import (
	"fmt"
	"log"

	sbon "github.com/hourglass/sbon"
)

func main() {
	sys, err := sbon.New(sbon.Options{
		Seed:        5,
		VirtualTime: true,
		Topology: sbon.TopologyConfig{
			TransitDomains:      2,
			TransitNodes:        2,
			StubsPerTransit:     2,
			StubNodes:           4,
			IntraStubLatency:    [2]float64{1, 5},
			StubUplinkLatency:   [2]float64{2, 10},
			IntraTransitLatency: [2]float64{8, 20},
			InterTransitLatency: [2]float64{30, 80},
			ExtraStubEdgeProb:   0.2,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	stubs := sys.StubNodes()
	if err := sys.AddStream(0, stubs[0], 60); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddStream(1, stubs[7], 90); err != nil {
		log.Fatal(err)
	}

	q := sbon.Query{ID: 1, Consumer: stubs[len(stubs)-1], Streams: []sbon.StreamID{0, 1}}
	res, err := sys.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Deploy(res.Circuit); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %s\n", res.Circuit)
	fmt.Printf("analytic: usage %.1f KB·ms/s, rate %.1f KB/s, latency %.1f ms\n",
		sys.Usage(res.Circuit), res.Circuit.Plan.OutRate, sys.Latency(res.Circuit))

	if err := sys.StartEngine(); err != nil {
		log.Fatal(err)
	}
	run, err := sys.Run(res.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstreaming for 40 simulated seconds (instant under virtual time)...")
	if err := sys.RunFor(40); err != nil {
		log.Fatal(err)
	}
	m := run.Measure()
	fmt.Printf("measured: usage %.1f KB·ms/s, rate %.1f KB/s, mean latency %.1f ms (p95 %.1f) over %d tuples\n",
		m.NetworkUsage, m.OutRateKBs, m.MeanLatencyMs, m.P95LatencyMs, m.TuplesOut)

	// The world changes: the join's host gets busy. Re-optimize WITHOUT
	// stopping the circuit — the adaptation layer plans the move and the
	// engine migrates the running operator (buffer → cutover → forward).
	victim := res.Circuit.UnpinnedServices()[0].Node
	fmt.Printf("\nnode %d becomes overloaded; adapting while the circuit runs...\n", victim)
	sys.SetBackgroundLoad(victim, 0.95)
	before := run.Measure().TuplesOut
	stats, err := sys.Adapt(sbon.AdaptOptions{Sweeps: 1})
	if err != nil {
		log.Fatal(err)
	}
	st := stats[0]
	fmt.Printf("%d service(s) evaluated, %d migrated live (buffered %d tuples during handoff)\n",
		st.ServicesEvaluated, st.Migrated, st.Buffered)
	if err := sys.RunFor(20); err != nil {
		log.Fatal(err)
	}
	after := run.Measure().TuplesOut
	fmt.Printf("circuit now: %s (usage %.1f KB·ms/s)\n", res.Circuit, sys.Usage(res.Circuit))
	fmt.Printf("delivery across the migration: %d → %d tuples, no interruption\n", before, after)
	if err := sys.StopRun(q.ID); err != nil {
		log.Fatal(err)
	}
}
