// Quickstart: build an SBON, publish two streams, and let the integrated
// cost-space optimizer choose and place a circuit for a join query —
// comparing it against the classical two-step optimizer.
package main

import (
	"fmt"
	"log"

	sbon "github.com/hourglass/sbon"
)

func main() {
	// A modest overlay (~160 nodes) so the example runs in a second.
	sys, err := sbon.New(sbon.Options{
		Seed: 42,
		Topology: sbon.TopologyConfig{
			TransitDomains:      4,
			TransitNodes:        4,
			StubsPerTransit:     3,
			StubNodes:           3,
			IntraStubLatency:    [2]float64{1, 6},
			StubUplinkLatency:   [2]float64{2, 12},
			IntraTransitLatency: [2]float64{8, 25},
			InterTransitLatency: [2]float64{35, 90},
			ExtraStubEdgeProb:   0.15,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	stubs := sys.StubNodes()
	fmt.Printf("overlay up: %d nodes (%d edge)\n", sys.Topo.NumNodes(), len(stubs))

	// Two producers at opposite edges of the network.
	if err := sys.AddStream(0, stubs[0], 100); err != nil { // 100 KB/s
		log.Fatal(err)
	}
	if err := sys.AddStream(1, stubs[len(stubs)-1], 150); err != nil {
		log.Fatal(err)
	}

	q := sbon.Query{
		ID:       1,
		Consumer: stubs[len(stubs)/2],
		Streams:  []sbon.StreamID{0, 1},
	}

	res, err := sys.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nintegrated optimizer considered %d plan(s)\n", res.PlansConsidered)
	fmt.Printf("chosen plan:    %s\n", res.Circuit.Plan)
	fmt.Printf("placed circuit: %s\n", res.Circuit)
	fmt.Printf("network usage:  %.1f KB·ms/s\n", sys.Usage(res.Circuit))
	fmt.Printf("consumer latency: %.1f ms\n", sys.Latency(res.Circuit))

	two, err := sys.OptimizeTwoStep(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntwo-step baseline usage: %.1f KB·ms/s (%.2fx integrated)\n",
		sys.Usage(two.Circuit), sys.Usage(two.Circuit)/sys.Usage(res.Circuit))

	if err := sys.Deploy(res.Circuit); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeployed; total network usage now %.1f KB·ms/s\n", sys.TotalUsage())
}
