// Multi-query optimization: several dashboards subscribe to overlapping
// join queries. New circuits reuse the running services of earlier ones
// when those services fall within a cost-space radius of their ideal
// placement — the paper's §3.4 pruning. The example sweeps the radius to
// show the work/benefit trade-off, then executes both dashboards on the
// virtual-time engine: the shared join runs once, its tuples fan out to
// both consumers.
package main

import (
	"fmt"
	"log"
	"math"

	sbon "github.com/hourglass/sbon"
)

func main() {
	sys, err := sbon.New(sbon.Options{
		Seed:        11,
		VirtualTime: true,
		Topology: sbon.TopologyConfig{
			TransitDomains:      4,
			TransitNodes:        4,
			StubsPerTransit:     3,
			StubNodes:           4,
			IntraStubLatency:    [2]float64{1, 6},
			StubUplinkLatency:   [2]float64{2, 12},
			IntraTransitLatency: [2]float64{8, 25},
			InterTransitLatency: [2]float64{35, 90},
			ExtraStubEdgeProb:   0.15,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	stubs := sys.StubNodes()
	// Market data feeds from four exchanges.
	for i := 0; i < 4; i++ {
		if err := sys.AddStream(sbon.StreamID(i), stubs[i*12], 80+float64(i)*40); err != nil {
			log.Fatal(err)
		}
	}

	// First dashboard: correlate feeds 0⋈1⋈2, deployed fresh.
	base := sbon.Query{ID: 1, Consumer: stubs[5], Streams: []sbon.StreamID{0, 1, 2}}
	r1, err := sys.Optimize(base)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Deploy(r1.Circuit); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dashboard 1 deployed: %s\n", r1.Circuit)
	fmt.Printf("  usage %.1f KB·ms/s\n\n", sys.Usage(r1.Circuit))

	// Second dashboard wants the same correlation elsewhere. Sweep the
	// pruning radius.
	probe := sbon.Query{ID: 2, Consumer: stubs[40], Streams: []sbon.StreamID{0, 1, 2}}
	fmt.Println("radius sweep for dashboard 2 (same join, different consumer):")
	fmt.Printf("%-14s %-10s %-10s %-14s\n", "radius", "examined", "reused", "marginal usage")
	for _, radius := range []float64{0, 10, 25, 50, 100, math.Inf(1)} {
		res, err := sys.OptimizeShared(probe, radius)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%.0f", radius)
		if math.IsInf(radius, 1) {
			label = "inf"
		}
		fmt.Printf("%-14s %-10d %-10d %14.1f\n",
			label, res.InstancesExamined, res.ReusedServices, sys.Usage(res.Circuit))
	}

	// Deploy with a moderate radius and show the shared total.
	res, err := sys.OptimizeShared(probe, 100)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Deploy(res.Circuit); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndashboard 2 deployed reusing %d service(s): %s\n", res.ReusedServices, res.Circuit)
	fmt.Printf("total usage for both dashboards: %.1f KB·ms/s (first alone was %.1f)\n",
		sys.TotalUsage(), sys.Usage(r1.Circuit))

	// Execute both dashboards: the shared services run once on the data
	// plane, their tuples delivered to both consumers.
	if err := sys.StartEngine(); err != nil {
		log.Fatal(err)
	}
	run1, err := sys.Run(r1.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	run2, err := sys.Run(res.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RunFor(10); err != nil {
		log.Fatal(err)
	}
	st := sys.SharedExecution()
	m1, m2 := run1.Measure(), run2.Measure()
	fmt.Printf("\nexecuted 10 simulated seconds: %d shared instance(s) feeding %d subscriber circuit(s)\n",
		st.Instances, st.Subscribers)
	fmt.Printf("dashboard 1 delivered %d tuples; dashboard 2 delivered %d (of them %d arrived over shared edges)\n",
		m1.TuplesOut, m2.TuplesOut, run2.SharedIn())
}
