// Volcano monitoring: the paper's motivating scenario ("live sensor
// readings from a volcano originate at a particular volcano; one cannot
// move mountains"). Seismic and acoustic sensor streams are pinned to one
// stub domain; a distant observatory joins, filters, and aggregates them.
// The example shows load-aware placement: when the node hosting the join
// becomes busy, re-optimization migrates the service away.
package main

import (
	"fmt"
	"log"

	sbon "github.com/hourglass/sbon"
)

func main() {
	sys, err := sbon.New(sbon.Options{
		Seed: 7,
		Topology: sbon.TopologyConfig{
			TransitDomains:      4,
			TransitNodes:        4,
			StubsPerTransit:     3,
			StubNodes:           4,
			IntraStubLatency:    [2]float64{1, 6},
			StubUplinkLatency:   [2]float64{2, 12},
			IntraTransitLatency: [2]float64{8, 25},
			InterTransitLatency: [2]float64{35, 90},
			ExtraStubEdgeProb:   0.15,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// The volcano: stub domain 0. Sensors are pinned producers there.
	volcano := sys.Topo.StubDomainMembers(0)
	sensors := []struct {
		id   sbon.StreamID
		node sbon.NodeID
		rate float64
	}{
		{0, volcano[0], 120}, // seismometer
		{1, volcano[1], 120}, // second seismometer
		{2, volcano[2], 60},  // acoustic sensor
	}
	for _, s := range sensors {
		if err := sys.AddStream(s.id, s.node, s.rate); err != nil {
			log.Fatal(err)
		}
	}
	// Correlated seismometers join selectively.
	if err := sys.SetJoinSelectivity(0, 1, 0.3); err != nil {
		log.Fatal(err)
	}

	// The observatory sits in the last stub domain, across the WAN.
	lastDomain := sys.Topo.StubDomainMembers(sys.Topo.NumStubDomains() - 1)
	observatory := lastDomain[0]

	q := sbon.Query{
		ID:       1,
		Consumer: observatory,
		Streams:  []sbon.StreamID{0, 1, 2},
		// Drop low-energy readings at the sensors.
		FilterSel: map[sbon.StreamID]float64{0: 0.5, 1: 0.5},
		// Ship only windowed summaries over the long haul.
		AggregateFraction: 0.1,
	}

	res, err := sys.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volcano feed plan: %s\n", res.Circuit.Plan)
	fmt.Printf("placed: %s\n", res.Circuit)
	fmt.Printf("usage %.1f KB·ms/s, observatory latency %.1f ms\n",
		sys.Usage(res.Circuit), sys.Latency(res.Circuit))
	if err := sys.Deploy(res.Circuit); err != nil {
		log.Fatal(err)
	}

	// A hosting node gets busy (someone started a backup job on it).
	victim := res.Circuit.UnpinnedServices()[0].Node
	fmt.Printf("\nnode %d (hosting %s) becomes heavily loaded...\n",
		victim, res.Circuit.UnpinnedServices()[0].Plan.Kind)
	sys.SetBackgroundLoad(victim, 0.95)

	stats, err := sys.Reoptimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-optimization sweep: %d service(s) evaluated, %d migrated\n",
		stats.ServicesEvaluated, stats.Migrations)
	fmt.Printf("circuit now: %s\n", res.Circuit)
	fmt.Printf("usage %.1f KB·ms/s, latency %.1f ms\n",
		sys.Usage(res.Circuit), sys.Latency(res.Circuit))
}
