package sbon_test

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	sbon "github.com/hourglass/sbon"
	"github.com/hourglass/sbon/internal/exp"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
	"github.com/hourglass/sbon/internal/workload"
)

// Benchmarks regenerating every paper artifact (see DESIGN.md §5). Each
// benchmark runs the corresponding experiment end to end at reduced
// scale so `go test -bench=.` stays tractable; `cmd/sbon-exp` runs the
// full-scale versions. Reported custom metrics surface the experiment's
// headline number so regressions in *results*, not just runtime, are
// visible.

// ratioOfLastColumnMean averages a numeric column over the table rows.
func colMean(b *testing.B, t *exp.Table, col int) float64 {
	b.Helper()
	var sum float64
	var n int
	for _, row := range t.Rows {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func BenchmarkFig1_TwoStepVsIntegrated(b *testing.B) {
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig1(exp.Fig1Params{Scale: exp.Small, Seeds: 3})
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(colMean(b, last, 5), "usage-ratio")
}

func BenchmarkFig2_CostSpaceConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig2(exp.Fig2Params{Scale: exp.Small, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_PlacementMapping(b *testing.B) {
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig3(exp.Fig3Params{Scale: exp.Small, Seed: 3, Trials: 30})
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// Row 0 is the hilbert-dht mapper; column 2 its mean mapping error.
	b.ReportMetric(colMean(b, last, 2)/3, "mean-map-err")
}

func BenchmarkFig4_MultiQueryRadius(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig4(exp.Fig4Params{Scale: exp.Small, Seed: 4, Background: 8, Probes: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX1_PlacementStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.X1(exp.X1Params{Scale: exp.Small, Seed: 11, QueryCounts: []int{5}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX2_VivaldiConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.X2(exp.X2Params{Scale: exp.Small, Seed: 12, Rounds: []int{5, 20}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX3_MappingError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.X3(exp.X3Params{Scale: exp.Small, Seed: 13, Dims: []int{2, 3}, Targets: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX4_Reoptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := exp.DefaultX4Params()
		p.Scale = exp.Small
		p.Queries = 4
		p.Steps = 4
		if _, err := exp.X4(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX5_DHTLookupHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.X5(exp.X5Params{Seed: 15, Sizes: []int{64, 256}, Lookups: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX6_OptimizerScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.X6(exp.X6Params{Seed: 16, StubSizes: []int{1, 3}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX7_SpringVsWeiszfeld(b *testing.B) {
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.X7(exp.X7Params{Scale: exp.Small, Seed: 17, Runs: 3})
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(colMean(b, last, 3), "weisz/spring")
}

func BenchmarkX9_PlanRewriting(b *testing.B) {
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.X9(exp.X9Params{Scale: exp.Small, Seeds: 3})
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(colMean(b, last, 5), "recovered-%")
}

func BenchmarkX10_PlanBank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.X10(exp.X10Params{Scale: exp.Small, Seeds: 2, States: []int{1, 2, 4, 8}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX8_EngineValidation regenerates the data-plane validation on
// the virtual-time engine: the same 40-simulated-second window per
// circuit that the wall-clock variant spends 1.2s of real time on.
func BenchmarkX8_EngineValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.X8(exp.X8Params{Seed: 18, RunFor: 400 * time.Millisecond, Virtual: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX8_EngineValidationWallClock keeps the wall-clock engine's
// cost on record as the baseline the virtual kernel is measured against.
func BenchmarkX8_EngineValidationWallClock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.X8(exp.X8Params{Seed: 18, RunFor: 400 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX11_ThousandNodeVirtual runs the 1024-node, 200-circuit
// scenario — infeasible on the wall clock (≈27 minutes of real time at
// the X8 time scale) and a sub-second regeneration under virtual time.
func BenchmarkX11_ThousandNodeVirtual(b *testing.B) {
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.X11(exp.DefaultX11Params())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(colMean(b, last, 6), "rate-ratio")
	b.ReportMetric(colMean(b, last, 7), "usage-ratio")
}

// BenchmarkX12_NodeChurnLiveMigration drains and kills 5% of a 592-node
// overlay mid-execution through the live migration protocol, then
// re-joins them; reported metrics are the data-plane settle times of
// the two phases (simulated ms) and the tuple-loss count (must be 0).
func BenchmarkX12_NodeChurnLiveMigration(b *testing.B) {
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.X12(exp.DefaultX12Params())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(colMean(b, last, 5), "settle-sim-ms")
	b.ReportMetric(colMean(b, last, 6), "tuple-loss")
}

// BenchmarkX13_PeriodicAdaptation1024 runs the 1024-node drifting-load
// scenario: 4 adaptation sweeps of live migrations under traffic. The
// reported metric is the total network-usage reduction fraction across
// the sweeps (positive = the trajectory decreased).
func BenchmarkX13_PeriodicAdaptation1024(b *testing.B) {
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.X13(exp.DefaultX13Params())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	first, err := strconv.ParseFloat(last.Rows[0][3], 64)
	if err != nil {
		b.Fatal(err)
	}
	final, err := strconv.ParseFloat(last.Rows[len(last.Rows)-1][4], 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric((first-final)/first, "usage-reduction")
	b.ReportMetric(colMean(b, last, 2), "migrations/sweep")
}

// Facade-level benchmarks: optimization cost on the paper-scale overlay.

func paperScaleSystem(b *testing.B) *sbon.System {
	b.Helper()
	sys, err := sbon.New(sbon.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	stubs := sys.StubNodes()
	for i := 0; i < 4; i++ {
		if err := sys.AddStream(sbon.StreamID(i), stubs[i*140], 100); err != nil {
			b.Fatal(err)
		}
	}
	return sys
}

func BenchmarkIntegratedOptimize592Nodes4Way(b *testing.B) {
	sys := paperScaleSystem(b)
	q := sbon.Query{ID: 1, Consumer: sys.StubNodes()[300], Streams: []sbon.StreamID{0, 1, 2, 3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Optimize(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoStepOptimize592Nodes4Way(b *testing.B) {
	sys := paperScaleSystem(b)
	q := sbon.Query{ID: 1, Consumer: sys.StubNodes()[300], Streams: []sbon.StreamID{0, 1, 2, 3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.OptimizeTwoStep(q); err != nil {
			b.Fatal(err)
		}
	}
}

// Batch-optimization benchmarks: 1000 queries drawn from overlapping
// stream sets with varied consumers, so the plan cache sees repeats — the
// scenario OptimizeBatch is built for. The sequential variant runs the
// same workload through one-at-a-time Optimize calls for comparison.

func batchWorkload(sys *sbon.System, n int) []sbon.Query {
	sets := [][]sbon.StreamID{{0, 1}, {1, 2}, {2, 3}, {0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3}}
	stubs := sys.StubNodes()
	qs := make([]sbon.Query, n)
	for i := range qs {
		qs[i] = sbon.Query{
			ID:       sbon.QueryID(i + 1),
			Consumer: stubs[(i*7)%32], // 32 distinct consumers -> repeated cache keys
			Streams:  sets[i%len(sets)],
		}
	}
	return qs
}

func BenchmarkOptimizeBatch1k(b *testing.B) {
	sys := paperScaleSystem(b)
	qs := batchWorkload(sys, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.OptimizeBatch(qs, sbon.BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(qs) {
			b.Fatalf("got %d results", len(res))
		}
	}
	b.ReportMetric(float64(len(qs)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkOptimizeBatch1kNoCache(b *testing.B) {
	sys := paperScaleSystem(b)
	qs := batchWorkload(sys, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.OptimizeBatch(qs, sbon.BatchOptions{NoCache: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(qs)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkOptimizeBatch1kNoCacheOracle runs the uncached batch with
// the DHT disabled, so every physical mapping goes through the
// snapshot's k-d tree index (oracle mapper) instead of the ring walk —
// the pure spatial-index hot path.
func BenchmarkOptimizeBatch1kNoCacheOracle(b *testing.B) {
	sys, err := sbon.New(sbon.Options{Seed: 1, DisableDHT: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	stubs := sys.StubNodes()
	for i := 0; i < 4; i++ {
		if err := sys.AddStream(sbon.StreamID(i), stubs[i*140], 100); err != nil {
			b.Fatal(err)
		}
	}
	qs := batchWorkload(sys, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.OptimizeBatch(qs, sbon.BatchOptions{NoCache: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(qs)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkOptimizeSequential1k(b *testing.B) {
	sys := paperScaleSystem(b)
	qs := batchWorkload(sys, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := sys.Optimize(q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(qs)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

// Sharded batch benchmarks: the cost space is split into Hilbert-prefix
// regions with a private snapshot, plan cache, cost index, and worker
// pool each (optimizer.OptimizeBatchSharded). Compare the queries/s
// metric against BenchmarkOptimizeBatch1k (the single-pool path) —
// shards share nothing mutable, so the gap widens with core count.

func benchSharded(b *testing.B, shards, n int, noCache bool) {
	sys := paperScaleSystem(b)
	qs := batchWorkload(sys, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := sys.OptimizeBatchSharded(qs, sbon.ShardedBatchOptions{Shards: shards, NoCache: noCache})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(qs) {
			b.Fatalf("got %d results", len(res))
		}
	}
	b.ReportMetric(float64(len(qs)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkOptimizeBatchSharded1k(b *testing.B)        { benchSharded(b, 8, 1000, false) }
func BenchmarkOptimizeBatchSharded1kNoCache(b *testing.B) { benchSharded(b, 8, 1000, true) }

// BenchmarkOptimizeBatchSharded16x10k is the "path to ~1M queries/s"
// configuration: 16 shards over a 10k-query cache-friendly batch. The
// queries/s metric is the number to track.
func BenchmarkOptimizeBatchSharded16x10k(b *testing.B) { benchSharded(b, 16, 10000, false) }

// Scheduling micro-benchmarks for the virtual-time kernel: schedule and
// drain pendingEvents timers through the full VirtualClock API on the
// hierarchical timer wheel vs the reference binary heap. The wheel's
// O(1) amortized schedule/fire is what keeps ≥100k pending events (16k
// nodes' heartbeats) cheap; see internal/simtime BenchmarkWheelQueue*
// for the mutex-free queue-only numbers.
func benchClockSchedule(b *testing.B, clk *simtime.VirtualClock, pending int) {
	release := clk.Drive()
	defer release()
	rng := rand.New(rand.NewSource(1))
	fired := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < pending; j++ {
			clk.AfterFunc(time.Duration(1+rng.Intn(10_000_000))*time.Microsecond, func() { fired++ })
		}
		clk.Sleep(11_000_000 * time.Microsecond) // drain: fire everything
	}
	b.StopTimer()
	if fired != b.N*pending {
		b.Fatalf("fired %d of %d", fired, b.N*pending)
	}
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkSchedule100kWheel(b *testing.B) { benchClockSchedule(b, simtime.NewVirtual(), 100_000) }
func BenchmarkSchedule100kHeap(b *testing.B) {
	benchClockSchedule(b, simtime.NewVirtualReference(), 100_000)
}

// BenchmarkX14_SharedExecution1024 runs the shared-execution comparison
// (200 queries / 40 shared subtrees on 1024 nodes, reuse on vs off) end
// to end on the virtual clock. The reported metric is the measured
// data-plane usage reduction reuse buys — the §3.4 savings on the wire.
func BenchmarkX14_SharedExecution1024(b *testing.B) {
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.X14(exp.DefaultX14Params())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	onUsage, _ := strconv.ParseFloat(last.Rows[0][5], 64)
	offUsage, _ := strconv.ParseFloat(last.Rows[1][5], 64)
	if offUsage > 0 {
		b.ReportMetric(100*(1-onUsage/offUsage), "usage-saved-%")
	}
}

// BenchmarkX15_IncrementalReplanning1024 regenerates the incremental
// re-planning comparison (1024 nodes, 200 circuits, drift rounds from
// 0.5% to 30% of nodes). The reported metric is the services-evaluated
// speedup the delta path buys on the 1%-node drift round.
func BenchmarkX15_IncrementalReplanning1024(b *testing.B) {
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.X15(exp.DefaultX15Params())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	for _, row := range last.Rows {
		if row[0] == "1" {
			if v, err := strconv.ParseFloat(row[5], 64); err == nil {
				b.ReportMetric(v, "speedup@1%")
			}
		}
	}
}

// BenchmarkX16_FailureRepair1024 regenerates the unplanned-failure
// scenario (1024 nodes, 5% staggered crashes under 1% ambient message
// loss): heartbeat detection, automatic circuit repair, bounded tuple
// loss. Reported metrics are the total services repaired and the mean
// per-round detections — both must stay stable across same-seed runs.
func BenchmarkX16_FailureRepair1024(b *testing.B) {
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.X16(exp.DefaultX16Params())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	repaired := 0.0
	for i := range last.Rows {
		if v, err := strconv.ParseFloat(last.Rows[i][4], 64); err == nil {
			repaired += v
		}
	}
	b.ReportMetric(repaired, "services-repaired")
	b.ReportMetric(colMean(b, last, 2), "detections/round")
}

// BenchmarkX17_Scale16k regenerates the full-scale scenario: 16400
// nodes under sparse latency, 100k queries through 16 optimizer
// shards, full-population heartbeats on the timer-wheel kernel, and
// ticker-fed coordinate sync across three adaptation rounds. Reported
// metrics are the peak pending timer count (event-kernel load), the
// mean coordinates synced per round, and the mean coordinate staleness
// the sync repairs.
func BenchmarkX17_Scale16k(b *testing.B) {
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.X17(exp.DefaultX17Params())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	peak := 0.0
	for i := range last.Rows {
		if v, err := strconv.ParseFloat(last.Rows[i][8], 64); err == nil && v > peak {
			peak = v
		}
	}
	b.ReportMetric(peak, "peak-pending-events")
	b.ReportMetric(colMean(b, last, 1), "synced/round")
	b.ReportMetric(colMean(b, last, 2), "staleness-ms")
}

// benchShardedNetwork drives a ~100k-node overlay's full-population
// heartbeat traffic (the X18 data-plane load, minus the optimizer) for
// two simulated seconds per iteration on the given shard count. The
// events/s metric is raw event-kernel throughput; comparing the 64-shard
// variant against the single-queue twin on a multi-core host shows the
// parallel windows' speedup — on one core they should be within noise.
func benchShardedNetwork(b *testing.B, shards int) {
	topoCfg := topology.DefaultConfig()
	topoCfg.TransitDomains = 8
	topoCfg.TransitNodes = 8
	topoCfg.StubsPerTransit = 125
	topoCfg.StubNodes = 100 // 64 + 8·125·100 = 100064 nodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(18)))
	if err != nil {
		b.Fatal(err)
	}
	if err := topo.EnableSparseLatency(); err != nil {
		b.Fatal(err)
	}
	n := topo.NumNodes()
	beats := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clk := simtime.NewVirtual()
		if shards > 1 {
			// Modulo lanes: no locality, so this is the worst case for
			// cross-shard traffic — the kernel number is conservative.
			laneOf := make([]int32, n)
			for j := range laneOf {
				laneOf[j] = int32(j % shards)
			}
			clk.ShardLanes(laneOf, shards, time.Duration(topo.MinEdgeLatency()*float64(time.Millisecond)))
		}
		release := clk.Drive()
		net := overlay.NewNetwork(topo, overlay.Config{TimeScale: time.Millisecond, InboxSize: 8192, Clock: clk})
		net.Start()
		hb := net.StartHeartbeats(500*time.Millisecond, 0.05)
		b.StartTimer()
		clk.Sleep(2 * time.Second)
		b.StopTimer()
		beats = net.Metrics.Counter("hb.recv").Value()
		hb.Stop()
		net.Stop()
		release()
		b.StartTimer()
	}
	b.ReportMetric(beats*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(beats, "beats/iter")
}

func BenchmarkShardedNetwork100k(b *testing.B)            { benchShardedNetwork(b, 64) }
func BenchmarkShardedNetwork100kSingleQueue(b *testing.B) { benchShardedNetwork(b, 1) }

// Tracer micro-benchmarks: the disabled (nil) path is the cost every
// instrumented call site pays in production, so it must stay within
// noise; the enabled path bounds the per-event recording cost.

func BenchmarkTraceEmitDisabled(b *testing.B) {
	var tr *trace.Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() && tr.Sample() {
			tr.Emit("bench", "hop", trace.Int("i", i))
		}
	}
}

func BenchmarkTraceEmitEnabled(b *testing.B) {
	tr := trace.New(simtime.NewVirtual())
	tr.SetLimit(1 << 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit("bench", "hop", trace.Int("i", i), trace.Num("v", 1.5))
	}
}

// BenchmarkX16_FailureRepair1024Traced runs the same crash/repair
// scenario as BenchmarkX16_FailureRepair1024 with a tracer attached —
// the pairing quantifies the enabled-tracer overhead, while the
// untraced variant vs its pre-trace baseline bounds the disabled cost.
func BenchmarkX16_FailureRepair1024Traced(b *testing.B) {
	events := 0
	for i := 0; i < b.N; i++ {
		p := exp.DefaultX16Params()
		p.Trace = trace.New(simtime.NewVirtual())
		if _, err := exp.X16(p); err != nil {
			b.Fatal(err)
		}
		events = p.Trace.Len()
	}
	b.ReportMetric(float64(events), "trace-events")
}

// Re-planning benchmarks: the cost of one re-optimization round on the
// 1024-node, 200-circuit deployment after a 1%-node load drift — full
// sweep vs delta-driven incremental sweep over the same sequence of
// drifts. The services-evaluated metric is the work ratio the wall
// clock should track.

func planBench(b *testing.B) (*topology.Topology, *optimizer.Env, *optimizer.Deployment, *optimizer.Reoptimizer) {
	b.Helper()
	topoCfg := topology.DefaultConfig()
	topoCfg.StubNodes = 21 // 1024 nodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(31)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31 * 3))
	sCfg := workload.DefaultStreamConfig()
	sCfg.NumStreams = 16
	stats, err := workload.GenerateStats(topo, sCfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	qCfg := workload.DefaultQueryConfig()
	qCfg.NumQueries = 200
	qCfg.StreamsPerQuery = [2]int{2, 3}
	qCfg.AggregateProb = 0
	qs, err := workload.GenerateQueries(topo, stats, qCfg, rng, 1)
	if err != nil {
		b.Fatal(err)
	}
	envCfg := optimizer.DefaultEnvConfig(31)
	envCfg.UseDHT = false
	env, err := optimizer.NewEnv(topo, stats, envCfg)
	if err != nil {
		b.Fatal(err)
	}
	results, err := optimizer.OptimizeBatch(env, qs, optimizer.BatchOptions{})
	if err != nil {
		b.Fatal(err)
	}
	dep := optimizer.NewDeployment(env, nil)
	for i := range results {
		if err := dep.Deploy(results[i].Circuit); err != nil {
			b.Fatal(err)
		}
	}
	ro := optimizer.NewReoptimizer(dep)
	ro.Mapper = placement.OracleMapper{Source: env}
	ro.ImprovementThreshold = 0.35
	// Prime the delta watermark and settle initial slack so iterations
	// measure drift response only.
	for i := 0; ; i++ {
		plan, _, err := ro.PlanIncremental()
		if err != nil {
			b.Fatal(err)
		}
		applyBenchPlan(b, dep, plan)
		if len(plan.Moves) == 0 {
			break
		}
		if i > 20 {
			b.Fatal("deployment did not settle")
		}
	}
	return topo, env, dep, ro
}

func applyBenchPlan(b *testing.B, dep *optimizer.Deployment, plan optimizer.MigrationPlan) {
	b.Helper()
	for _, m := range plan.Moves {
		tk, err := dep.BeginMigration(m)
		if err != nil {
			b.Fatal(err)
		}
		if err := tk.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanFull1024(b *testing.B) {
	topo, env, dep, ro := planBench(b)
	churn := rand.New(rand.NewSource(31 * 11))
	evaluated := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		workload.ApplyChurn(topo, env, workload.Churn{LoadFraction: 0.01, LoadMax: 0.4}, churn)
		b.StartTimer()
		plan, err := ro.Plan()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		evaluated += plan.ServicesEvaluated
		applyBenchPlan(b, dep, plan)
		env.CompactDirty(env.Epoch()) // keep the unconsumed log bounded
		b.StartTimer()
	}
	b.ReportMetric(float64(evaluated)/float64(b.N), "services-evaluated")
}

func BenchmarkPlanIncremental1024(b *testing.B) {
	topo, env, dep, ro := planBench(b)
	churn := rand.New(rand.NewSource(31 * 11))
	evaluated := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		workload.ApplyChurn(topo, env, workload.Churn{LoadFraction: 0.01, LoadMax: 0.4}, churn)
		b.StartTimer()
		plan, _, err := ro.PlanIncremental()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		evaluated += plan.ServicesEvaluated
		applyBenchPlan(b, dep, plan)
		b.StartTimer()
	}
	b.ReportMetric(float64(evaluated)/float64(b.N), "services-evaluated")
}
