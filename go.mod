module github.com/hourglass/sbon

go 1.24
