#!/bin/sh
# bench.sh — run the paper-artifact and batch benchmark suites and emit a
# JSON snapshot for the bench trajectory.
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_9.json)
#
# BENCH_0.json (pre-spatial-index), BENCH_1.json (pre-virtual-time),
# BENCH_2.json (pre-live-migration), BENCH_3.json (pre-shared-
# execution), BENCH_4.json (pre-incremental-replanning), BENCH_5.json
# (pre-failure-repair), BENCH_6.json (pre-observability), BENCH_7.json
# (pre-sharding), and BENCH_8.json (pre-data-plane-sharding) are
# committed baselines; the default output BENCH_9.json — which runs
# BenchmarkX17_Scale16k on the sharded data plane (DefaultX17Params now
# carries DataShards: 16) and adds the 100k-node event-kernel numbers
# (BenchmarkShardedNetwork100k vs ...SingleQueue; on one core they are
# within noise, on >= 8 cores the sharded plane must pull ahead) — sits
# alongside them so the trajectory stays in the repo. Bump the default
# for later milestones.
#
# Each end-to-end benchmark runs once (-benchtime 1x): the suites are
# experiment regenerations, so a single iteration is already seconds of
# work and the numbers are for trajectory tracking, not
# microbenchmarking. The tracer and scheduler micro-benchmarks run a
# fixed iteration count in a second pass so their ns/op is meaningful.
set -eu

out=${1:-BENCH_9.json}
cd "$(dirname "$0")/.."

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkFig|BenchmarkX|BenchmarkIntegrated|BenchmarkTwoStep|BenchmarkOptimize|BenchmarkPlan|BenchmarkShardedNetwork' \
  -benchtime 1x -timeout 30m . | tee "$tmp"

go test -run '^$' -bench 'BenchmarkTraceEmit' -benchtime 1000000x -timeout 10m . | tee -a "$tmp"

# Scheduler micro-benchmarks: each op schedules and drains 100k timers;
# 20 iterations (2M events each side) keeps the wheel-vs-heap ordering
# out of single-run noise. The pure queue-operation comparison lives in
# internal/simtime (BenchmarkWheelQueue100kPending vs Heap...).
go test -run '^$' -bench 'BenchmarkSchedule100k' -benchtime 20x -timeout 10m . | tee -a "$tmp"

awk '
BEGIN { print "[" ; first = 1 }
/^Benchmark/ {
  name = $1; iters = $2; ns = $3
  sub(/-[0-9]+$/, "", name)
  metrics = ""
  for (i = 5; i + 1 <= NF; i += 2) {
    gsub(/"/, "", $(i+1))
    metrics = metrics sprintf("%s\"%s\": %s", (metrics == "" ? "" : ", "), $(i+1), $i)
  }
  if (!first) print ","
  first = 0
  printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
  if (metrics != "") printf ", %s", metrics
  printf "}"
}
END { print "\n]" }
' "$tmp" > "$out"

echo "wrote $out"
