#!/bin/sh
# bench.sh — run the paper-artifact and batch benchmark suites and emit a
# JSON snapshot for the bench trajectory.
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_6.json)
#
# BENCH_0.json (pre-spatial-index), BENCH_1.json (pre-virtual-time),
# BENCH_2.json (pre-live-migration), BENCH_3.json (pre-shared-
# execution), BENCH_4.json (pre-incremental-replanning), and
# BENCH_5.json (pre-failure-repair) are committed baselines; the
# default output BENCH_6.json — which adds X16, the crash-detection and
# automatic-repair scenario — sits alongside them so the trajectory
# stays in the repo. Bump the default for later milestones.
#
# Each benchmark runs once (-benchtime 1x): the suites are end-to-end
# experiment regenerations, so a single iteration is already seconds of
# work and the numbers are for trajectory tracking, not microbenchmarking.
set -eu

out=${1:-BENCH_6.json}
cd "$(dirname "$0")/.."

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkFig|BenchmarkX|BenchmarkIntegrated|BenchmarkTwoStep|BenchmarkOptimize|BenchmarkPlan' \
  -benchtime 1x -timeout 30m . | tee "$tmp"

awk '
BEGIN { print "[" ; first = 1 }
/^Benchmark/ {
  name = $1; iters = $2; ns = $3
  sub(/-[0-9]+$/, "", name)
  metrics = ""
  for (i = 5; i + 1 <= NF; i += 2) {
    gsub(/"/, "", $(i+1))
    metrics = metrics sprintf("%s\"%s\": %s", (metrics == "" ? "" : ", "), $(i+1), $i)
  }
  if (!first) print ","
  first = 0
  printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
  if (metrics != "") printf ", %s", metrics
  printf "}"
}
END { print "\n]" }
' "$tmp" > "$out"

echo "wrote $out"
